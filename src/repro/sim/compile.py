"""Compiled execution backend: levelized, slot-indexed, closure-compiled RTL.

:func:`compile_design` lowers an elaborated
:class:`~repro.sim.elaborate.Design` once into a :class:`CompiledDesign`:

* **slot-indexed state** — every signal resolves to an integer slot in a
  flat list (memories to an index into a list of lists), with widths,
  masks, and signedness frozen at compile time; the hot path never touches
  a string-keyed dict;
* **closure-compiled execution** — expressions and statement bodies lower
  to nested Python closures that bake in the interpreter's width-context
  and signedness decisions (no per-eval ``self_width``, no isinstance
  dispatch); constant subtrees fold to literals at compile time;
* **levelized scheduling** — the acyclic combinational region is
  topologically sorted into a single-pass schedule; a fanout-driven dirty
  set means a poke re-evaluates only the cone of logic it can reach;
* **bit-level dirty granularity** — continuous assigns that read a
  static part-select or bit of a wide bus record a per-reader bit mask;
  out-of-schedule writes (pokes, nonblocking commits, sequential-block
  overlays) carry the ``old ^ new`` changed-bit mask, and readers whose
  mask does not intersect are skipped instead of re-evaluated (counter:
  ``sim.dirty.reader_skips``);
* **compiled sequential blocks** — edge triggers resolve to precomputed
  trigger-bit slots, so edge detection snapshots a short list instead of
  rebuilding a name-keyed dict per poke.

The scheduler refuses to levelize regions it cannot order statically —
combinational cycles, several combinational drivers of one signal, or a
block that reads a value it also drives.  Those designs keep their
compiled node bodies but run them under the interpreter's bounded
full-pass **fixpoint fallback** (same node order, same round bound, same
``SimulationError`` on non-convergence), so combinational-loop
classification is identical to the reference backend.  Designs the
compiler cannot statically *size* at all (e.g. part selects with
non-constant bounds) raise :class:`UncompilableDesign`; under
``backend="auto"`` the :class:`~repro.sim.simulator.Simulator` facade
then falls back to the interpreter entirely.

Cycle-identity with :class:`~repro.sim.simulator.InterpreterSimulator` is
enforced by differential tests over every ``vgen`` family and the vereval
problem set (``tests/test_sim_compile.py``).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.errors import SimulationError
from repro.verilog import ast
from repro.sim import eval as _ev
from repro.sim.elaborate import Design
from repro.sim.simulator import _MAX_LOOP_ITERS, Simulator

__all__ = [
    "CompiledDesign",
    "CompiledSimulator",
    "UncompilableDesign",
    "compile_design",
]

#: expression closure: (state, mems, overlay, mem_overlay) -> int
_ExprFn = Callable[..., int]
#: statement closure: (state, mems, overlay, mem_overlay, nba) -> None
_StmtFn = Callable[..., None]


class UncompilableDesign(Exception):
    """The compiler cannot statically lower this design.

    Under ``backend="auto"`` the Simulator facade catches this and falls
    back to the interpreter, which reproduces whatever runtime behaviour
    (including errors) the construct has there.
    """


class _StaticScope:
    """:class:`repro.sim.eval.Scope` over frozen compile-time tables.

    Widths and signedness come from the compiler's tables; reading any
    runtime state raises, which is how non-constant sizing expressions
    (and therefore uncompilable designs) are detected.
    """

    def __init__(self, comp: "_Compiler") -> None:
        self._comp = comp

    def read(self, name: str) -> int:
        raise SimulationError(f"{name!r} is not a compile-time constant")

    def width_of(self, name: str) -> int:
        try:
            return self._comp.widths[self._comp.slot_of[name]]
        except KeyError:
            raise SimulationError(f"no signal named {name!r}") from None

    def is_signed(self, name: str) -> bool:
        slot = self._comp.slot_of.get(name)
        return False if slot is None else self._comp.signed[slot]

    def is_mem(self, name: str) -> bool:
        return name in self._comp.mem_of

    def mem_width(self, name: str) -> int:
        return self._comp.mem_widths[self._comp.mem_of[name]]

    def read_mem(self, name: str, index: int) -> int:
        raise SimulationError("memory contents are not compile-time constants")


def _commit_nba(st, mems, updates, widths, n_signals, changed,
                masks=None) -> None:
    """Commit nonblocking updates; append changed pseudo-slots to ``changed``.

    Mirrors ``InterpreterSimulator._commit_nba`` update-for-update.
    Updates are ``(is_mem, slot, lo, width, value)`` tuples; memory
    changes are reported as pseudo-slot ``n_signals + mem_slot``.  When
    ``masks`` is a dict it accumulates the changed-bit mask
    (``old ^ new``) per pseudo-slot for bit-granular dirty marking;
    memory changes are conservatively all-bits.
    """
    for is_mem, slot, lo, width, value in updates:
        if is_mem:
            column = mems[slot]
            if 0 <= lo < len(column):
                new = value & ((1 << width) - 1)
                if column[lo] != new:
                    column[lo] = new
                    changed.append(n_signals + slot)
                    if masks is not None:
                        masks[n_signals + slot] = -1
            continue
        keep = st[slot]
        sig_width = widths[slot]
        if lo == 0 and width >= sig_width:
            new = value & ((1 << sig_width) - 1)
        else:
            field_mask = ((1 << width) - 1) << lo
            new = (keep & ~field_mask) | (
                ((value & ((1 << width) - 1)) << lo) & field_mask
            )
        if new != keep:
            st[slot] = new
            changed.append(slot)
            if masks is not None:
                masks[slot] = masks.get(slot, 0) | (keep ^ new)


class CompiledDesign:
    """The compile-once execution image of one elaborated design."""

    __slots__ = (
        "design",
        "n_signals",
        "slot_of",
        "names",
        "widths",
        "masks",
        "mem_of",
        "mem_names",
        "mem_widths",
        "mem_depths",
        "mem_bases",
        "comb_count",
        "nodes",
        "levelized",
        "topo",
        "pos_of",
        "readers",
        "read_masks",
        "writers",
        "seq",
        "trigger_slots",
        "initial",
    )

    def __init__(self) -> None:
        self.design: Optional[Design] = None
        self.n_signals = 0
        self.slot_of: Dict[str, int] = {}
        self.names: List[str] = []
        self.widths: List[int] = []
        self.masks: List[int] = []
        self.mem_of: Dict[str, int] = {}
        self.mem_names: List[str] = []
        self.mem_widths: List[int] = []
        self.mem_depths: List[int] = []
        self.mem_bases: List[int] = []
        self.comb_count = 0
        #: combinational nodes in declaration order; each is a callable
        #: ``run(st, mems) -> [changed pseudo-slots]``
        self.nodes: List[Callable] = []
        self.levelized = False
        self.topo: List[int] = []     # schedule position -> node index
        self.pos_of: List[int] = []   # node index -> schedule position
        self.readers: Dict[int, Tuple[int, ...]] = {}
        #: per pseudo-slot, one read-bit mask per entry of ``readers[ps]``
        #: (-1 = reads any bit); lets bit-granular external writes skip
        #: readers of untouched bits of a wide bus
        self.read_masks: Dict[int, Tuple[int, ...]] = {}
        self.writers: Dict[int, Tuple[int, ...]] = {}
        #: compiled seq blocks: (trigger list [(wanted bit, index)], body fn)
        self.seq: List[Tuple[List[Tuple[int, int]], _StmtFn]] = []
        self.trigger_slots: Tuple[int, ...] = ()
        self.initial: List[_StmtFn] = []


def compile_design(design: Design) -> CompiledDesign:
    """Compile ``design``, caching the result on the design object.

    The cache is dropped on pickling (``Design.__getstate__``), so designs
    shipped to process-pool workers recompile locally instead of dragging
    unpicklable closures along.
    """
    cached = getattr(design, "_compiled", None)
    if cached is not None:
        return cached
    compiled = _Compiler(design).compile()
    design._compiled = compiled
    return compiled


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------


class _Compiler:
    def __init__(self, design: Design) -> None:
        self.design = design
        self.slot_of: Dict[str, int] = {}
        self.widths: List[int] = []
        self.signed: List[bool] = []
        self.mem_of: Dict[str, int] = {}
        self.mem_widths: List[int] = []
        self.mem_depths: List[int] = []
        self.mem_bases: List[int] = []
        for name, sig in design.signals.items():
            self.slot_of[name] = len(self.widths)
            self.widths.append(sig.width)
            self.signed.append(sig.signed)
        for name, memory in design.memories.items():
            self.mem_of[name] = len(self.mem_widths)
            self.mem_widths.append(memory.width)
            self.mem_depths.append(memory.depth)
            self.mem_bases.append(memory.base)
        self.n_signals = len(self.widths)
        self._static = _StaticScope(self)

    # -- static sizing ------------------------------------------------------

    def _self_width(self, expr: ast.Expr) -> int:
        try:
            return _ev.self_width(expr, self._static)
        except SimulationError as exc:
            raise UncompilableDesign(str(exc)) from None

    def _is_signed(self, expr: ast.Expr) -> bool:
        return _ev.is_signed_expr(expr, self._static)

    def _static_int(self, expr: ast.Expr) -> int:
        """A compile-time constant integer (self-determined evaluation)."""
        try:
            return _ev.eval_expr(expr, self._static)
        except SimulationError as exc:
            raise UncompilableDesign(str(exc)) from None

    def _is_static(self, expr: ast.Expr) -> bool:
        """Whether ``expr`` reads no runtime state (constant-foldable)."""
        if isinstance(expr, (ast.Number, ast.StringLiteral)):
            return True
        if isinstance(expr, ast.Unary):
            return self._is_static(expr.operand)
        if isinstance(expr, ast.Binary):
            return self._is_static(expr.lhs) and self._is_static(expr.rhs)
        if isinstance(expr, ast.Ternary):
            return (
                self._is_static(expr.cond)
                and self._is_static(expr.then)
                and self._is_static(expr.other)
            )
        if isinstance(expr, ast.Concat):
            return all(self._is_static(p) for p in expr.parts)
        if isinstance(expr, ast.Repeat):
            return self._is_static(expr.count) and self._is_static(expr.inner)
        if isinstance(expr, ast.SystemCall):
            if expr.name in ("$time", "$stime", "$realtime"):
                return True
            return all(self._is_static(a) for a in expr.args)
        return False

    def _slot(self, name: str) -> int:
        slot = self.slot_of.get(name)
        if slot is None:
            raise UncompilableDesign(f"no flat signal named {name!r}")
        return slot

    @staticmethod
    def _base_name(expr: ast.Expr) -> str:
        if not isinstance(expr, ast.Identifier):
            raise UncompilableDesign(
                "only simple identifiers may be indexed/selected"
            )
        return expr.name

    # -- expression compilation --------------------------------------------
    #
    # `_compile_expr` mirrors eval.eval_expr (context-width entry point),
    # `_compile_operand` mirrors eval._operand (context-determined operand
    # with sign extension), `_compile_eval` mirrors eval._eval.  Every
    # width and signedness decision the interpreter takes per evaluation
    # is taken here once, at compile time.

    def _compile_expr(self, expr: ast.Expr, context_width: int,
                      ov: bool) -> _ExprFn:
        width = max(context_width, self._self_width(expr))
        return self._compile_eval(expr, width, ov)

    def _compile_operand(self, expr: ast.Expr, width: int, ov: bool) -> _ExprFn:
        own = self._self_width(expr)
        fn = self._compile_eval(expr, max(own, width), ov)
        if width <= own:
            return fn
        ext_mask = (1 << width) - 1
        if self._is_signed(expr):
            own_mask = (1 << own) - 1
            sign_bit = 1 << (own - 1)
            own_full = 1 << own

            def signed_ext(st, mems, o, mo, _f=fn):
                v = _f(st, mems, o, mo) & own_mask
                if v & sign_bit:
                    v -= own_full
                return v & ext_mask

            return signed_ext
        return lambda st, mems, o, mo, _f=fn: _f(st, mems, o, mo) & ext_mask

    def _emit_read_raw(self, name: str, ov: bool) -> _ExprFn:
        """Overlay-aware unmasked read of a whole signal."""
        slot = self._slot(name)
        if ov:
            def read(st, mems, o, mo, _s=slot):
                v = o.get(_s)
                return st[_s] if v is None else v

            return read
        return lambda st, mems, o, mo, _s=slot: st[_s]

    def _compile_eval(self, expr: ast.Expr, width: int, ov: bool) -> _ExprFn:
        if self._is_static(expr):
            try:
                value = _ev._eval(expr, self._static, width)
            except SimulationError as exc:
                raise UncompilableDesign(str(exc)) from None
            return lambda st, mems, o, mo, _v=value: _v

        if isinstance(expr, ast.Identifier):
            name = expr.name
            if name in self.mem_of:
                raise UncompilableDesign(
                    f"memory {name!r} used without an index"
                )
            raw = self._emit_read_raw(name, ov)
            m = self.masks_for(name)
            return lambda st, mems, o, mo, _f=raw, _m=m: _f(st, mems, o, mo) & _m

        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr, width, ov)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr, width, ov)
        if isinstance(expr, ast.Ternary):
            cond = self._compile_expr(expr.cond, 0, ov)
            then = self._compile_operand(expr.then, width, ov)
            other = self._compile_operand(expr.other, width, ov)
            return lambda st, mems, o, mo: (
                then(st, mems, o, mo)
                if cond(st, mems, o, mo) != 0
                else other(st, mems, o, mo)
            )
        if isinstance(expr, ast.Concat):
            parts = []
            offset = 0
            for part in reversed(expr.parts):
                pw = self._self_width(part)
                parts.append((self._compile_eval(part, pw, ov), offset))
                offset += pw
            parts.reverse()
            m = (1 << max(width, 1)) - 1

            def concat(st, mems, o, mo, _parts=tuple(parts), _m=m):
                out = 0
                for fn, off in _parts:
                    out |= fn(st, mems, o, mo) << off
                return out & _m

            return concat
        if isinstance(expr, ast.Repeat):
            times = self._static_int(expr.count)
            inner_width = self._self_width(expr.inner)
            inner = self._compile_eval(expr.inner, inner_width, ov)
            # Replication is multiplication by 0b...0001_0001 (one set bit
            # per copy, spaced inner_width apart).
            factor = 0
            for i in range(times):
                factor |= 1 << (inner_width * i)
            m = (1 << max(width, 1)) - 1
            return lambda st, mems, o, mo: (inner(st, mems, o, mo) * factor) & m
        if isinstance(expr, ast.Index):
            return self._compile_index(expr, ov)
        if isinstance(expr, ast.PartSelect):
            name = self._base_name(expr.base)
            msb = self._static_int(expr.msb)
            lsb = self._static_int(expr.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            sel_mask = (1 << (msb - lsb + 1)) - 1
            raw = self._emit_read_raw(name, ov)
            return lambda st, mems, o, mo: (raw(st, mems, o, mo) >> lsb) & sel_mask
        if isinstance(expr, ast.IndexedPartSelect):
            name = self._base_name(expr.base)
            start = self._compile_expr(expr.start, 0, ov)
            sel_width = self._static_int(expr.width)
            sel_mask = (1 << sel_width) - 1
            ascending = expr.ascending
            raw = self._emit_read_raw(name, ov)

            def indexed(st, mems, o, mo):
                lo = start(st, mems, o, mo)
                if not ascending:
                    lo = lo - sel_width + 1
                if lo < 0:
                    lo = 0
                return (raw(st, mems, o, mo) >> lo) & sel_mask

            return indexed
        if isinstance(expr, ast.SystemCall):
            return self._compile_system_call(expr, width, ov)
        raise UncompilableDesign(f"cannot compile {type(expr).__name__}")

    def masks_for(self, name: str) -> int:
        return (1 << self.widths[self._slot(name)]) - 1

    def _compile_unary(self, expr: ast.Unary, width: int, ov: bool) -> _ExprFn:
        op = expr.op
        if op in ("&", "~&", "|", "~|", "^", "~^"):
            operand_width = self._self_width(expr.operand)
            fn = self._compile_eval(expr.operand, operand_width, ov)
            invert = 1 if op.startswith("~") else 0
            if op in ("&", "~&"):
                full = (1 << operand_width) - 1
                return lambda st, mems, o, mo: (
                    1 if fn(st, mems, o, mo) == full else 0
                ) ^ invert
            if op in ("|", "~|"):
                return lambda st, mems, o, mo: (
                    1 if fn(st, mems, o, mo) != 0 else 0
                ) ^ invert
            return lambda st, mems, o, mo: (
                bin(fn(st, mems, o, mo)).count("1") & 1
            ) ^ invert
        if op == "!":
            fn = self._compile_expr(expr.operand, 0, ov)
            return lambda st, mems, o, mo: 0 if fn(st, mems, o, mo) != 0 else 1
        fn = self._compile_operand(expr.operand, width, ov)
        m = (1 << width) - 1 if width > 0 else 0
        if op == "~":
            return lambda st, mems, o, mo: ~fn(st, mems, o, mo) & m
        if op == "-":
            return lambda st, mems, o, mo: -fn(st, mems, o, mo) & m
        if op == "+":
            return fn
        raise UncompilableDesign(f"unsupported unary operator {op!r}")

    def _compile_binary(self, expr: ast.Binary, width: int, ov: bool) -> _ExprFn:
        op = expr.op
        if op in ("&&", "||"):
            lhs = self._compile_expr(expr.lhs, 0, ov)
            rhs = self._compile_expr(expr.rhs, 0, ov)
            if op == "&&":
                return lambda st, mems, o, mo: (
                    1 if lhs(st, mems, o, mo) != 0 and rhs(st, mems, o, mo) != 0
                    else 0
                )
            return lambda st, mems, o, mo: (
                1 if lhs(st, mems, o, mo) != 0 or rhs(st, mems, o, mo) != 0
                else 0
            )
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            cmp_width = max(
                self._self_width(expr.lhs), self._self_width(expr.rhs)
            )
            signed = self._is_signed(expr.lhs) and self._is_signed(expr.rhs)
            lhs = self._compile_operand(expr.lhs, cmp_width, ov)
            rhs = self._compile_operand(expr.rhs, cmp_width, ov)
            if signed:
                sign_bit = 1 << (cmp_width - 1)
                full = 1 << cmp_width

                def operands(st, mems, o, mo):
                    a = lhs(st, mems, o, mo)
                    b = rhs(st, mems, o, mo)
                    if a & sign_bit:
                        a -= full
                    if b & sign_bit:
                        b -= full
                    return a, b
            else:
                def operands(st, mems, o, mo):
                    return lhs(st, mems, o, mo), rhs(st, mems, o, mo)

            if op in ("==", "==="):
                def cmp(a, b):
                    return a == b
            elif op in ("!=", "!=="):
                def cmp(a, b):
                    return a != b
            elif op == "<":
                def cmp(a, b):
                    return a < b
            elif op == "<=":
                def cmp(a, b):
                    return a <= b
            elif op == ">":
                def cmp(a, b):
                    return a > b
            else:
                def cmp(a, b):
                    return a >= b

            def compare(st, mems, o, mo):
                a, b = operands(st, mems, o, mo)
                return 1 if cmp(a, b) else 0

            return compare
        if op in ("<<", ">>", "<<<", ">>>"):
            lhs = self._compile_operand(expr.lhs, width, ov)
            amount_fn = self._compile_expr(expr.rhs, 0, ov)
            clamp = max(width, 1) + 64
            m = (1 << width) - 1 if width > 0 else 0
            if op in ("<<", "<<<"):
                def shl(st, mems, o, mo):
                    amount = amount_fn(st, mems, o, mo)
                    if amount >= clamp:
                        amount = clamp
                    return (lhs(st, mems, o, mo) << amount) & m

                return shl
            if op == ">>>" and self._is_signed(expr.lhs):
                sign_bit = 1 << (width - 1)
                full = 1 << width

                def sra(st, mems, o, mo):
                    amount = amount_fn(st, mems, o, mo)
                    if amount >= clamp:
                        amount = clamp
                    v = lhs(st, mems, o, mo) & m
                    if v & sign_bit:
                        v -= full
                    return (v >> amount) & m

                return sra

            def shr(st, mems, o, mo):
                amount = amount_fn(st, mems, o, mo)
                if amount >= clamp:
                    amount = clamp
                return lhs(st, mems, o, mo) >> amount

            return shr
        if op == "**":
            base = self._compile_operand(expr.lhs, width, ov)
            exp_fn = self._compile_expr(expr.rhs, 0, ov)
            m = (1 << width) - 1 if width > 0 else 0

            def power(st, mems, o, mo):
                exponent = exp_fn(st, mems, o, mo)
                if exponent > 64:
                    exponent = 64
                return (base(st, mems, o, mo) ** exponent) & m

            return power

        signed = self._is_signed(expr.lhs) and self._is_signed(expr.rhs)
        lhs = self._compile_operand(expr.lhs, width, ov)
        rhs = self._compile_operand(expr.rhs, width, ov)
        m = (1 << width) - 1 if width > 0 else 0
        if op == "+":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) + rhs(st, mems, o, mo)
            ) & m
        if op == "-":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) - rhs(st, mems, o, mo)
            ) & m
        if op == "*":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) * rhs(st, mems, o, mo)
            ) & m
        if op in ("/", "%"):
            want_div = op == "/"
            if signed:
                sign_bit = 1 << (width - 1)
                full = 1 << width

                def signed_divmod(st, mems, o, mo):
                    a = lhs(st, mems, o, mo)
                    b = rhs(st, mems, o, mo)
                    if b == 0:
                        return 0  # two-state stand-in for X
                    if a & sign_bit:
                        a -= full
                    if b & sign_bit:
                        b -= full
                    quotient = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        quotient = -quotient
                    if want_div:
                        return quotient & m
                    return (a - b * quotient) & m

                return signed_divmod

            def divmod_fn(st, mems, o, mo):
                b = rhs(st, mems, o, mo)
                if b == 0:
                    return 0  # two-state stand-in for X
                a = lhs(st, mems, o, mo)
                return (a // b if want_div else a % b) & m

            return divmod_fn
        if op == "&":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) & rhs(st, mems, o, mo)
            )
        if op == "|":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) | rhs(st, mems, o, mo)
            )
        if op == "^":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) ^ rhs(st, mems, o, mo)
            )
        if op in ("^~", "~^"):
            return lambda st, mems, o, mo: ~(
                lhs(st, mems, o, mo) ^ rhs(st, mems, o, mo)
            ) & m
        raise UncompilableDesign(f"unsupported binary operator {op!r}")

    def _compile_index(self, expr: ast.Index, ov: bool) -> _ExprFn:
        name = self._base_name(expr.base)
        index_fn = self._compile_expr(expr.index, 0, ov)
        mem_slot = self.mem_of.get(name)
        if mem_slot is not None:
            base = self.mem_bases[mem_slot]
            depth = self.mem_depths[mem_slot]
            if ov:
                def read_mem(st, mems, o, mo, _ms=mem_slot):
                    idx = index_fn(st, mems, o, mo) - base
                    if idx < 0 or idx >= depth:
                        return 0  # out-of-range read: two-state X
                    v = mo.get((_ms, idx))
                    return mems[_ms][idx] if v is None else v

                return read_mem

            def read_mem_direct(st, mems, o, mo, _ms=mem_slot):
                idx = index_fn(st, mems, o, mo) - base
                if idx < 0 or idx >= depth:
                    return 0
                return mems[_ms][idx]

            return read_mem_direct
        raw = self._emit_read_raw(name, ov)
        sig_width = self.widths[self._slot(name)]

        def read_bit(st, mems, o, mo):
            idx = index_fn(st, mems, o, mo)
            if idx >= sig_width:
                return 0  # out-of-range select reads as 0 (two-state X)
            return (raw(st, mems, o, mo) >> idx) & 1

        return read_bit

    def _compile_system_call(self, expr: ast.SystemCall, width: int,
                             ov: bool) -> _ExprFn:
        name = expr.name
        if name in ("$signed", "$unsigned"):
            if len(expr.args) != 1:
                raise UncompilableDesign(f"{name} takes exactly one argument")
            return self._compile_operand(expr.args[0], width, ov)
        if name == "$clog2":
            if len(expr.args) != 1:
                raise UncompilableDesign("$clog2 takes exactly one argument")
            arg = self._compile_expr(expr.args[0], 0, ov)

            def clog2(st, mems, o, mo):
                value = arg(st, mems, o, mo)
                if value <= 1:
                    return 0
                return (value - 1).bit_length()

            return clog2
        if name in ("$time", "$stime", "$realtime"):
            return lambda st, mems, o, mo: 0
        raise UncompilableDesign(f"unsupported system function {name!r}")

    # -- lvalue compilation -------------------------------------------------

    def _lvalue_width(self, target: ast.Expr) -> int:
        if isinstance(target, ast.Identifier):
            if target.name in self.mem_of:
                raise UncompilableDesign(
                    f"cannot assign whole memory {target.name!r}"
                )
            return self.widths[self._slot(target.name)]
        if isinstance(target, ast.Concat):
            return sum(self._lvalue_width(p) for p in target.parts)
        if isinstance(target, ast.Index):
            name = self._base_name(target.base)
            if name in self.mem_of:
                return self.mem_widths[self.mem_of[name]]
            return 1
        if isinstance(target, ast.PartSelect):
            msb = self._static_int(target.msb)
            lsb = self._static_int(target.lsb)
            return abs(msb - lsb) + 1
        if isinstance(target, ast.IndexedPartSelect):
            return self._static_int(target.width)
        raise UncompilableDesign(
            f"invalid assignment target {type(target).__name__}"
        )

    def _compile_proc_write(self, target: ast.Expr, blocking: bool):
        """Procedural write closure: (st, mems, ov, mov, nba, value)."""
        if isinstance(target, ast.Concat):
            widths = [self._lvalue_width(p) for p in target.parts]
            total = sum(widths)
            writers = []
            offset = total
            for part, part_width in zip(target.parts, widths):
                offset -= part_width
                part_mask = (1 << part_width) - 1
                writers.append(
                    (self._compile_proc_write(part, blocking), offset, part_mask)
                )

            def write_concat(st, mems, o, mo, nba, value):
                for writer, off, pm in writers:
                    writer(st, mems, o, mo, nba, (value >> off) & pm)

            return write_concat

        if isinstance(target, ast.Identifier):
            slot = self._slot(target.name)
            if target.name in self.mem_of:
                raise UncompilableDesign(
                    f"cannot assign whole memory {target.name!r}"
                )
            width = self.widths[slot]
            m = (1 << width) - 1
            if blocking:
                def write_full(st, mems, o, mo, nba, value):
                    o[slot] = value & m

                return write_full

            def nba_full(st, mems, o, mo, nba, value):
                nba.append((False, slot, 0, width, value))

            return nba_full

        if isinstance(target, ast.Index):
            name = self._base_name(target.base)
            index_fn = self._compile_expr(target.index, 0, True)
            mem_slot = self.mem_of.get(name)
            if mem_slot is not None:
                base = self.mem_bases[mem_slot]
                depth = self.mem_depths[mem_slot]
                mem_width = self.mem_widths[mem_slot]
                mem_mask = (1 << mem_width) - 1
                if blocking:
                    def write_mem(st, mems, o, mo, nba, value):
                        idx = index_fn(st, mems, o, mo) - base
                        if idx < 0 or idx >= depth:
                            return  # out-of-range write ignored
                        mo[(mem_slot, idx)] = value & mem_mask

                    return write_mem

                def nba_mem(st, mems, o, mo, nba, value):
                    idx = index_fn(st, mems, o, mo) - base
                    if idx < 0 or idx >= depth:
                        return
                    nba.append((True, mem_slot, idx, mem_width, value & mem_mask))

                return nba_mem
            slot = self._slot(name)
            sig_width = self.widths[slot]
            return self._emit_field_write(
                slot, sig_width, index_fn, 1, blocking, runtime_lo=True
            )

        if isinstance(target, ast.PartSelect):
            name = self._base_name(target.base)
            slot = self._slot(name)
            sig_width = self.widths[slot]
            msb = self._static_int(target.msb)
            lsb = self._static_int(target.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            width = msb - lsb + 1
            return self._emit_field_write(
                slot, sig_width, lsb, width, blocking, runtime_lo=False
            )

        if isinstance(target, ast.IndexedPartSelect):
            name = self._base_name(target.base)
            slot = self._slot(name)
            sig_width = self.widths[slot]
            width = self._static_int(target.width)
            start_fn = self._compile_expr(target.start, 0, True)
            ascending = target.ascending

            def lo_fn(st, mems, o, mo):
                start = start_fn(st, mems, o, mo)
                lo = start if ascending else start - width + 1
                return lo if lo > 0 else 0

            return self._emit_field_write(
                slot, sig_width, lo_fn, width, blocking, runtime_lo=True
            )

        raise UncompilableDesign(
            f"invalid assignment target {type(target).__name__}"
        )

    def _emit_field_write(self, slot, sig_width, lo, width, blocking,
                          runtime_lo):
        """Bit/part write to a signal; mirrors _write_lvalue's field path.

        ``lo`` is an int when static, else a closure.  The interpreter's
        "full write" shortcut fires when ``lo == 0 and width >= sig_width``;
        for runtime ``lo`` that choice is made per execution.
        """
        value_mask = (1 << width) - 1
        sig_mask = (1 << sig_width) - 1
        raw = None
        if blocking:
            # Blocking field writes merge with the overlay-aware current
            # value (unmasked, as the interpreter reads it).
            def read_current(st, o, _s=slot):
                v = o.get(_s)
                return st[_s] if v is None else v

            raw = read_current

        if not runtime_lo:
            if lo == 0 and width >= sig_width:
                if blocking:
                    def write_full(st, mems, o, mo, nba, value):
                        o[slot] = value & sig_mask

                    return write_full

                def nba_full(st, mems, o, mo, nba, value):
                    nba.append((False, slot, 0, width, value))

                return nba_full
            field_mask = value_mask << lo
            keep_mask = ~field_mask
            if blocking:
                def write_field(st, mems, o, mo, nba, value):
                    o[slot] = (raw(st, o) & keep_mask) | (
                        ((value & value_mask) << lo) & field_mask
                    )

                return write_field

            def nba_field(st, mems, o, mo, nba, value):
                nba.append((False, slot, lo, width, value))

            return nba_field

        lo_fn = lo
        if blocking:
            def write_dynamic(st, mems, o, mo, nba, value):
                at = lo_fn(st, mems, o, mo)
                if at == 0 and width >= sig_width:
                    o[slot] = value & sig_mask
                    return
                field_mask = value_mask << at
                o[slot] = (raw(st, o) & ~field_mask) | (
                    ((value & value_mask) << at) & field_mask
                )

            return write_dynamic

        def nba_dynamic(st, mems, o, mo, nba, value):
            nba.append((False, slot, lo_fn(st, mems, o, mo), width, value))

        return nba_dynamic

    def _compile_direct_write(self, target: ast.Expr):
        """Continuous-assign write: (st, mems, value, changed) with
        name-level change detection appended to ``changed``."""
        if isinstance(target, ast.Concat):
            widths = [self._lvalue_width(p) for p in target.parts]
            total = sum(widths)
            writers = []
            offset = total
            for part, part_width in zip(target.parts, widths):
                offset -= part_width
                part_mask = (1 << part_width) - 1
                writers.append(
                    (self._compile_direct_write(part), offset, part_mask)
                )

            def write_concat(st, mems, value, changed):
                for writer, off, pm in writers:
                    writer(st, mems, (value >> off) & pm, changed)

            return write_concat

        if isinstance(target, ast.Identifier):
            if target.name in self.mem_of:
                raise UncompilableDesign(
                    f"cannot assign whole memory {target.name!r}"
                )
            slot = self._slot(target.name)
            m = (1 << self.widths[slot]) - 1

            def write_full(st, mems, value, changed):
                new = value & m
                if st[slot] != new:
                    st[slot] = new
                    changed.append(slot)

            return write_full

        if isinstance(target, ast.Index):
            name = self._base_name(target.base)
            if name in self.mem_of:
                # The interpreter raises SimulationError when this runs;
                # refusing to compile routes "auto" to the interpreter,
                # which reproduces that exact behaviour.
                raise UncompilableDesign(
                    "continuous assignment to memory element is not supported"
                )
            slot = self._slot(name)
            sig_width = self.widths[slot]
            index_fn = self._compile_expr(target.index, 0, False)
            return self._emit_direct_field(slot, sig_width, index_fn, 1, True)

        if isinstance(target, ast.PartSelect):
            name = self._base_name(target.base)
            slot = self._slot(name)
            sig_width = self.widths[slot]
            msb = self._static_int(target.msb)
            lsb = self._static_int(target.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            return self._emit_direct_field(
                slot, sig_width, lsb, msb - lsb + 1, False
            )

        if isinstance(target, ast.IndexedPartSelect):
            name = self._base_name(target.base)
            slot = self._slot(name)
            sig_width = self.widths[slot]
            width = self._static_int(target.width)
            start_fn = self._compile_expr(target.start, 0, False)
            ascending = target.ascending

            def lo_fn(st, mems, o, mo):
                start = start_fn(st, mems, o, mo)
                lo = start if ascending else start - width + 1
                return lo if lo > 0 else 0

            return self._emit_direct_field(slot, sig_width, lo_fn, width, True)

        raise UncompilableDesign(
            f"invalid assignment target {type(target).__name__}"
        )

    def _emit_direct_field(self, slot, sig_width, lo, width, runtime_lo):
        value_mask = (1 << width) - 1
        sig_mask = (1 << sig_width) - 1

        if not runtime_lo:
            if lo == 0 and width >= sig_width:
                def write_full(st, mems, value, changed):
                    new = value & sig_mask
                    if st[slot] != new:
                        st[slot] = new
                        changed.append(slot)

                return write_full
            field_mask = value_mask << lo
            keep_mask = ~field_mask

            def write_field(st, mems, value, changed):
                full = st[slot]
                new = (full & keep_mask) | (
                    ((value & value_mask) << lo) & field_mask
                )
                if new != full:
                    st[slot] = new
                    changed.append(slot)

            return write_field

        lo_fn = lo

        def write_dynamic(st, mems, value, changed):
            at = lo_fn(st, mems, None, None)
            full = st[slot]
            if at == 0 and width >= sig_width:
                new = value & sig_mask
            else:
                field_mask = value_mask << at
                new = (full & ~field_mask) | (
                    ((value & value_mask) << at) & field_mask
                )
            if new != full:
                st[slot] = new
                changed.append(slot)

        return write_dynamic

    # -- statement compilation ----------------------------------------------

    def _compile_stmt(self, stmt: ast.Stmt) -> Optional[_StmtFn]:
        if isinstance(stmt, ast.Block):
            compiled = [
                fn
                for fn in (self._compile_stmt(s) for s in stmt.stmts)
                if fn is not None
            ]
            if not compiled:
                return None
            if len(compiled) == 1:
                return compiled[0]
            steps = tuple(compiled)

            def block(st, mems, o, mo, nba):
                for step in steps:
                    step(st, mems, o, mo, nba)

            return block
        if isinstance(stmt, ast.Assign):
            lvalue_width = self._lvalue_width(stmt.target)
            value_fn = self._compile_expr(stmt.value, lvalue_width, True)
            writer = self._compile_proc_write(stmt.target, stmt.blocking)

            def assign(st, mems, o, mo, nba):
                writer(st, mems, o, mo, nba, value_fn(st, mems, o, mo))

            return assign
        if isinstance(stmt, ast.If):
            cond = self._compile_expr(stmt.cond, 0, True)
            then = self._compile_stmt(stmt.then)
            other = self._compile_stmt(stmt.other) if stmt.other else None

            def branch(st, mems, o, mo, nba):
                if cond(st, mems, o, mo) != 0:
                    if then is not None:
                        then(st, mems, o, mo, nba)
                elif other is not None:
                    other(st, mems, o, mo, nba)

            return branch
        if isinstance(stmt, ast.Case):
            return self._compile_case(stmt)
        if isinstance(stmt, ast.For):
            init = self._compile_stmt(stmt.init)
            cond = self._compile_expr(stmt.cond, 0, True)
            step = self._compile_stmt(stmt.step)
            body = self._compile_stmt(stmt.body)

            def loop(st, mems, o, mo, nba):
                if init is not None:
                    init(st, mems, o, mo, nba)
                iterations = 0
                while cond(st, mems, o, mo) != 0:
                    if body is not None:
                        body(st, mems, o, mo, nba)
                    if step is not None:
                        step(st, mems, o, mo, nba)
                    iterations += 1
                    if iterations > _MAX_LOOP_ITERS:
                        raise SimulationError(
                            f"for-loop exceeded {_MAX_LOOP_ITERS} iterations"
                        )

            return loop
        if isinstance(stmt, (ast.NullStmt, ast.SystemTaskCall)):
            return None
        raise UncompilableDesign(f"cannot compile {type(stmt).__name__}")

    def _compile_case(self, stmt: ast.Case) -> _StmtFn:
        # Same hoisted sizing as the interpreter's _exec_case: one subject
        # evaluation at the max width over subject and all labels.
        width = self._self_width(stmt.subject)
        for item in stmt.items:
            for label in item.labels:
                label_width = self._self_width(label)
                if label_width > width:
                    width = label_width
        subject_fn = self._compile_eval(stmt.subject, width, True)
        wildcard_kind = stmt.kind in ("casez", "casex")
        arms = []
        default_fn: Optional[_StmtFn] = None
        for item in stmt.items:
            body = self._compile_stmt(item.body)
            if item.is_default:
                default_fn = body  # last default wins, as in the interpreter
                continue
            for label in item.labels:
                wildcard = 0
                if wildcard_kind and isinstance(label, ast.Number):
                    wildcard = label.unknown_mask
                arms.append(
                    (self._compile_eval(label, width, True), ~wildcard, body)
                )
        arms_t = tuple(arms)

        def case(st, mems, o, mo, nba):
            subject = subject_fn(st, mems, o, mo)
            for label_fn, care, body in arms_t:
                if (subject & care) == (label_fn(st, mems, o, mo) & care):
                    if body is not None:
                        body(st, mems, o, mo, nba)
                    return
            if default_fn is not None:
                default_fn(st, mems, o, mo, nba)

        return case

    # -- read/write-set analysis ---------------------------------------------
    #
    # Per combinational node: which pseudo-slots does it read from global
    # state, and which does it write?  Reads dominated by an earlier
    # unconditional full write of the same signal inside the same node are
    # *internal* (the classic `i = 0; ... use i ...` for-loop pattern) and
    # excluded, which is what keeps such nodes levelizable.  Memory reads
    # are always external (element granularity is not tracked).

    def _mem_pseudo(self, name: str) -> int:
        return self.n_signals + self.mem_of[name]

    def _expr_reads(self, expr: ast.Expr, written: Set[str],
                    reads: Set[int]) -> None:
        if isinstance(expr, (ast.Number, ast.StringLiteral)):
            return
        if isinstance(expr, ast.Identifier):
            if expr.name in self.mem_of:
                reads.add(self._mem_pseudo(expr.name))
            elif expr.name not in written:
                reads.add(self._slot(expr.name))
            return
        if isinstance(expr, ast.Unary):
            self._expr_reads(expr.operand, written, reads)
            return
        if isinstance(expr, ast.Binary):
            self._expr_reads(expr.lhs, written, reads)
            self._expr_reads(expr.rhs, written, reads)
            return
        if isinstance(expr, ast.Ternary):
            self._expr_reads(expr.cond, written, reads)
            self._expr_reads(expr.then, written, reads)
            self._expr_reads(expr.other, written, reads)
            return
        if isinstance(expr, ast.Concat):
            for part in expr.parts:
                self._expr_reads(part, written, reads)
            return
        if isinstance(expr, ast.Repeat):
            self._expr_reads(expr.count, written, reads)
            self._expr_reads(expr.inner, written, reads)
            return
        if isinstance(expr, ast.Index):
            name = self._base_name(expr.base)
            if name in self.mem_of:
                reads.add(self._mem_pseudo(name))
            elif name not in written:
                reads.add(self._slot(name))
            self._expr_reads(expr.index, written, reads)
            return
        if isinstance(expr, ast.PartSelect):
            name = self._base_name(expr.base)
            if name not in written:
                reads.add(self._slot(name))
            self._expr_reads(expr.msb, written, reads)
            self._expr_reads(expr.lsb, written, reads)
            return
        if isinstance(expr, ast.IndexedPartSelect):
            name = self._base_name(expr.base)
            if name not in written:
                reads.add(self._slot(name))
            self._expr_reads(expr.start, written, reads)
            self._expr_reads(expr.width, written, reads)
            return
        if isinstance(expr, ast.SystemCall):
            for arg in expr.args:
                self._expr_reads(arg, written, reads)
            return
        raise UncompilableDesign(f"cannot analyse {type(expr).__name__}")

    def _expr_read_masks(self, expr: ast.Expr,
                         masks: Dict[int, int]) -> None:
        """Accumulate per-pseudo-slot *bit* read masks for one expression.

        The bit-granular companion of :meth:`_expr_reads` for continuous
        assigns: a static part-select or bit index of a signal records
        only the bits it actually reads, everything else records -1 (any
        bit).  Memories are always -1 — words have no per-bit dirty
        tracking.  ``-1 | x == -1`` keeps accumulation a plain OR.
        """
        if isinstance(expr, (ast.Number, ast.StringLiteral)):
            return
        if isinstance(expr, ast.Identifier):
            if expr.name in self.mem_of:
                masks[self._mem_pseudo(expr.name)] = -1
            else:
                masks[self._slot(expr.name)] = -1
            return
        if isinstance(expr, ast.Unary):
            self._expr_read_masks(expr.operand, masks)
            return
        if isinstance(expr, ast.Binary):
            self._expr_read_masks(expr.lhs, masks)
            self._expr_read_masks(expr.rhs, masks)
            return
        if isinstance(expr, ast.Ternary):
            self._expr_read_masks(expr.cond, masks)
            self._expr_read_masks(expr.then, masks)
            self._expr_read_masks(expr.other, masks)
            return
        if isinstance(expr, ast.Concat):
            for part in expr.parts:
                self._expr_read_masks(part, masks)
            return
        if isinstance(expr, ast.Repeat):
            self._expr_read_masks(expr.count, masks)
            self._expr_read_masks(expr.inner, masks)
            return
        if isinstance(expr, ast.Index):
            name = self._base_name(expr.base)
            if name in self.mem_of:
                masks[self._mem_pseudo(name)] = -1
            else:
                slot = self._slot(name)
                if self._is_static(expr.index):
                    index = self._static_int(expr.index)
                    bit = (
                        1 << index
                        if 0 <= index < self.widths[slot]
                        else 0  # out-of-range bit reads as constant 0
                    )
                    masks[slot] = masks.get(slot, 0) | bit
                else:
                    masks[slot] = -1
            self._expr_read_masks(expr.index, masks)
            return
        if isinstance(expr, ast.PartSelect):
            name = self._base_name(expr.base)
            slot = self._slot(name)
            if self._is_static(expr.msb) and self._is_static(expr.lsb):
                msb = self._static_int(expr.msb)
                lsb = self._static_int(expr.lsb)
                if msb < lsb:
                    msb, lsb = lsb, msb
                field = ((1 << (msb - lsb + 1)) - 1) << max(lsb, 0)
                masks[slot] = masks.get(slot, 0) | field
            else:
                masks[slot] = -1
            self._expr_read_masks(expr.msb, masks)
            self._expr_read_masks(expr.lsb, masks)
            return
        if isinstance(expr, ast.IndexedPartSelect):
            name = self._base_name(expr.base)
            slot = self._slot(name)
            if self._is_static(expr.start) and self._is_static(expr.width):
                start = self._static_int(expr.start)
                width = self._static_int(expr.width)
                if not expr.ascending:
                    start = start - width + 1
                field = ((1 << max(width, 0)) - 1) << max(start, 0)
                masks[slot] = masks.get(slot, 0) | field
            else:
                masks[slot] = -1
            self._expr_read_masks(expr.start, masks)
            self._expr_read_masks(expr.width, masks)
            return
        if isinstance(expr, ast.SystemCall):
            for arg in expr.args:
                self._expr_read_masks(arg, masks)
            return
        raise UncompilableDesign(f"cannot analyse {type(expr).__name__}")

    def _assign_read_masks(self, assign,
                           reads: Set[int]) -> Dict[int, int]:
        """Read-bit masks for one continuous assign, aligned to ``reads``.

        Value-side reads get precise masks where statically known; reads
        contributed by the lvalue (dynamic index expressions, the
        self-read of a partial write) stay conservatively -1.  Any slot
        the mask walk could not classify defaults to -1, so this can
        only ever *narrow* the dirty set, never starve it.
        """
        masks: Dict[int, int] = {}
        try:
            self._expr_read_masks(assign.value, masks)
        except UncompilableDesign:
            masks = {}
        lvalue_reads: Set[int] = set()
        self._lvalue_effects(
            assign.target, True, set(), lvalue_reads, set()
        )
        for ps in lvalue_reads:
            masks[ps] = -1
        return {ps: masks.get(ps, -1) for ps in reads}

    def _lvalue_effects(self, target: ast.Expr, blocking: bool,
                        written: Set[str], reads: Set[int],
                        writes: Set[int]) -> None:
        if isinstance(target, ast.Concat):
            for part in target.parts:
                self._lvalue_effects(part, blocking, written, reads, writes)
            return
        if isinstance(target, ast.Identifier):
            writes.add(self._slot(target.name))
            if blocking:
                written.add(target.name)
            return
        if isinstance(target, ast.Index):
            name = self._base_name(target.base)
            self._expr_reads(target.index, written, reads)
            if name in self.mem_of:
                writes.add(self._mem_pseudo(name))
                return
            slot = self._slot(name)
            writes.add(slot)
            # Partial writes merge with the current value, which is an
            # external read unless the signal was fully written first.
            if name not in written:
                reads.add(slot)
            return
        if isinstance(target, ast.PartSelect):
            name = self._base_name(target.base)
            slot = self._slot(name)
            writes.add(slot)
            msb = self._static_int(target.msb)
            lsb = self._static_int(target.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            if lsb == 0 and msb + 1 >= self.widths[slot]:
                # Covers the whole signal: behaves as a full write.
                if blocking:
                    written.add(name)
                return
            if name not in written:
                reads.add(slot)
            return
        if isinstance(target, ast.IndexedPartSelect):
            name = self._base_name(target.base)
            slot = self._slot(name)
            self._expr_reads(target.start, written, reads)
            writes.add(slot)
            if name not in written:
                reads.add(slot)
            return
        raise UncompilableDesign(
            f"invalid assignment target {type(target).__name__}"
        )

    def _stmt_effects(self, stmt: ast.Stmt, written: Set[str],
                      reads: Set[int], writes: Set[int]) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._stmt_effects(inner, written, reads, writes)
            return
        if isinstance(stmt, ast.Assign):
            self._expr_reads(stmt.value, written, reads)
            self._lvalue_effects(stmt.target, stmt.blocking, written, reads,
                                 writes)
            return
        if isinstance(stmt, ast.If):
            self._expr_reads(stmt.cond, written, reads)
            then_written = set(written)
            self._stmt_effects(stmt.then, then_written, reads, writes)
            other_written = set(written)
            if stmt.other is not None:
                self._stmt_effects(stmt.other, other_written, reads, writes)
            written |= then_written & other_written
            return
        if isinstance(stmt, ast.Case):
            self._expr_reads(stmt.subject, written, reads)
            arm_written: List[Set[str]] = []
            has_default = False
            for item in stmt.items:
                for label in item.labels:
                    self._expr_reads(label, written, reads)
                if item.is_default:
                    has_default = True
                branch = set(written)
                self._stmt_effects(item.body, branch, reads, writes)
                arm_written.append(branch)
            if has_default and arm_written:
                common = set.intersection(*arm_written)
                written |= common
            return
        if isinstance(stmt, ast.For):
            self._stmt_effects(stmt.init, written, reads, writes)
            self._expr_reads(stmt.cond, written, reads)
            # The loop may run zero times: body/step writes are not
            # guaranteed, so they are analysed on a scratch set.
            scratch = set(written)
            self._stmt_effects(stmt.body, scratch, reads, writes)
            self._stmt_effects(stmt.step, scratch, reads, writes)
            return
        if isinstance(stmt, (ast.NullStmt, ast.SystemTaskCall)):
            return
        raise UncompilableDesign(f"cannot analyse {type(stmt).__name__}")

    # -- node assembly -------------------------------------------------------

    def _build_assign_node(self, assign):
        lvalue_width = self._lvalue_width(assign.target)
        value_fn = self._compile_expr(assign.value, lvalue_width, False)
        writer = self._compile_direct_write(assign.target)

        def run(st, mems):
            changed: List[int] = []
            writer(st, mems, value_fn(st, mems, None, None), changed)
            return changed

        reads: Set[int] = set()
        writes: Set[int] = set()
        self._expr_reads(assign.value, set(), reads)
        self._lvalue_effects(assign.target, True, set(), reads, writes)
        return run, reads, writes

    def _build_block_node(self, block):
        body = self._compile_stmt(block.body)
        n_signals = self.n_signals
        widths = self.widths

        if body is None:
            def run_empty(st, mems):
                return ()

            return run_empty, set(), set()

        def run(st, mems):
            overlay: Dict[int, int] = {}
            mem_overlay: Dict[Tuple[int, int], int] = {}
            nba: List[tuple] = []
            body(st, mems, overlay, mem_overlay, nba)
            changed: List[int] = []
            for slot, value in overlay.items():
                if st[slot] != value:
                    st[slot] = value
                    changed.append(slot)
            if mem_overlay:
                for (mem_slot, idx), value in mem_overlay.items():
                    column = mems[mem_slot]
                    if column[idx] != value:
                        column[idx] = value
                        changed.append(n_signals + mem_slot)
            if nba:
                _commit_nba(st, mems, nba, widths, n_signals, changed)
            return changed

        reads: Set[int] = set()
        writes: Set[int] = set()
        self._stmt_effects(block.body, set(), reads, writes)
        return run, reads, writes

    # -- top-level compile ---------------------------------------------------

    def _new_image(self) -> CompiledDesign:
        """Execution-image factory; the batch compiler returns its own."""
        return CompiledDesign()

    def compile(self) -> CompiledDesign:
        design = self.design
        cd = self._new_image()
        cd.design = design
        cd.n_signals = self.n_signals
        cd.slot_of = self.slot_of
        cd.names = list(design.signals)
        cd.widths = self.widths
        cd.masks = [(1 << w) - 1 for w in self.widths]
        cd.mem_of = self.mem_of
        cd.mem_names = list(design.memories)
        cd.mem_widths = self.mem_widths
        cd.mem_depths = self.mem_depths
        cd.mem_bases = self.mem_bases
        cd.comb_count = len(design.comb_assigns) + len(design.comb_blocks)

        node_reads: List[Set[int]] = []
        node_writes: List[Set[int]] = []
        node_read_masks: List[Dict[int, int]] = []
        for assign in design.comb_assigns:
            run, reads, writes = self._build_assign_node(assign)
            cd.nodes.append(run)
            node_reads.append(reads)
            node_writes.append(writes)
            node_read_masks.append(self._assign_read_masks(assign, reads))
        for block in design.comb_blocks:
            run, reads, writes = self._build_block_node(block)
            cd.nodes.append(run)
            node_reads.append(reads)
            node_writes.append(writes)
            # Blocks read under control flow: conservatively any bit.
            node_read_masks.append({ps: -1 for ps in reads})

        # Sequential blocks + trigger-bit slots.
        trigger_names = sorted(
            {name for block in design.seq_blocks for _, name in block.triggers}
        )
        trigger_index = {}
        trigger_slots = []
        for name in trigger_names:
            trigger_index[name] = len(trigger_slots)
            trigger_slots.append(self._slot(name))
        cd.trigger_slots = tuple(trigger_slots)
        for block in design.seq_blocks:
            body = self._compile_stmt(block.body)
            if body is None:
                # Extra args absorb the batch backend's lane predicate.
                def body(st, mems, o, mo, nba, *_pred):  # noqa: E731
                    return None
            triggers = [
                (1 if edge == "posedge" else 0, trigger_index[name])
                for edge, name in block.triggers
            ]
            cd.seq.append((triggers, body))

        for stmt in design.initial_stmts:
            fn = self._compile_stmt(stmt)
            if fn is not None:
                cd.initial.append(fn)

        self._schedule(cd, node_reads, node_writes, node_read_masks)
        return cd

    def _schedule(self, cd: CompiledDesign, node_reads, node_writes,
                  node_read_masks=None) -> None:
        """Levelize the comb region; fall back to fixpoint order if the
        static scheduler cannot order it (cycle, multi-driver, self-dep)."""
        n = len(cd.nodes)
        writers: Dict[int, List[int]] = {}
        readers: Dict[int, List[int]] = {}
        for i in range(n):
            for ps in node_writes[i]:
                writers.setdefault(ps, []).append(i)
            for ps in node_reads[i]:
                readers.setdefault(ps, []).append(i)
        cd.readers = {ps: tuple(nodes) for ps, nodes in readers.items()}
        cd.writers = {ps: tuple(nodes) for ps, nodes in writers.items()}
        if node_read_masks is not None:
            cd.read_masks = {
                ps: tuple(node_read_masks[i].get(ps, -1) for i in nodes)
                for ps, nodes in readers.items()
                # All-readers-read-all-bits slots need no mask row; the
                # runtime treats a missing entry as -1 for every reader.
                if any(node_read_masks[i].get(ps, -1) != -1 for i in nodes)
            }

        levelized = all(len(nodes) == 1 for nodes in writers.values())
        succs: List[Set[int]] = [set() for _ in range(n)]
        indegree = [0] * n
        if levelized:
            for i in range(n):
                for ps in node_reads[i]:
                    for w in writers.get(ps, ()):
                        if w == i:
                            levelized = False
                        elif i not in succs[w]:
                            succs[w].add(i)
                            indegree[i] += 1
        if levelized:
            ready = [i for i in range(n) if indegree[i] == 0]
            heapq.heapify(ready)
            topo: List[int] = []
            while ready:
                i = heapq.heappop(ready)
                topo.append(i)
                for j in succs[i]:
                    indegree[j] -= 1
                    if indegree[j] == 0:
                        heapq.heappush(ready, j)
            if len(topo) != n:
                levelized = False  # combinational cycle
            else:
                cd.topo = topo
                pos_of = [0] * n
                for pos, i in enumerate(topo):
                    pos_of[i] = pos
                cd.pos_of = pos_of
        cd.levelized = levelized


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------


class CompiledSimulator(Simulator):
    """Executes a :class:`CompiledDesign` (see module docstring)."""

    def __init__(self, design: Design, max_settle_rounds: Optional[int] = None,
                 backend: Optional[str] = None):
        cd = compile_design(design)
        self.design = design
        self.cdesign = cd
        self.st: List[int] = [0] * cd.n_signals
        self.mem_data: List[List[int]] = [[0] * d for d in cd.mem_depths]
        self._max_rounds = max_settle_rounds or (2 * cd.comb_count + 16)
        self._heap: List[int] = []
        self._queued = bytearray(len(cd.nodes))
        #: readers skipped because an external write's changed-bit mask
        #: missed their recorded read bits (``sim.dirty.reader_skips``)
        self.stat_reader_skips = 0
        # Initial statements commit per statement, like the interpreter.
        for body in cd.initial:
            overlay: Dict[int, int] = {}
            mem_overlay: Dict[Tuple[int, int], int] = {}
            nba: List[tuple] = []
            body(self.st, self.mem_data, overlay, mem_overlay, nba)
            for slot, value in overlay.items():
                self.st[slot] = value
            for (mem_slot, idx), value in mem_overlay.items():
                self.mem_data[mem_slot][idx] = value
            _commit_nba(self.st, self.mem_data, nba, cd.widths, cd.n_signals,
                        [])
        if cd.levelized:
            for i in range(len(cd.nodes)):
                self._queued[i] = 1
                heapq.heappush(self._heap, cd.pos_of[i])
        self.settle()

    # -- state views ---------------------------------------------------------

    @property
    def state(self) -> Dict[str, int]:
        """Name-keyed *snapshot* of the flat signal state.

        Unlike the interpreter's live dict this is introspection-only:
        slot-indexed storage is the source of truth, so mutations of the
        returned dict do not reach the simulation — drive state through
        ``poke``/``poke_many`` instead.
        """
        return dict(zip(self.cdesign.names, self.st))

    @property
    def mems(self) -> Dict[str, List[int]]:
        """Name-keyed *snapshot* of the memory contents (see ``state``)."""
        return {
            name: list(column)
            for name, column in zip(self.cdesign.mem_names, self.mem_data)
        }

    def peek(self, name: str) -> int:
        try:
            return self.st[self.cdesign.slot_of[name]]
        except KeyError:
            raise SimulationError(f"peek of unknown signal {name!r}") from None

    def peek_mem(self, name: str, index: int) -> int:
        memory = self.design.memories[name]
        slot = index - memory.base
        if slot < 0 or slot >= memory.depth:
            raise SimulationError(f"memory index {index} out of range for {name!r}")
        return self.mem_data[self.cdesign.mem_of[name]][slot]

    # -- poke hooks ----------------------------------------------------------

    def _poke_pending(self, name: str, value: int) -> bool:
        cd = self.cdesign
        slot = cd.slot_of.get(name)
        if slot is None:
            self.design.signal(name)  # raises the canonical error
        return self.st[slot] != (value & cd.masks[slot])

    def _poke_apply(self, name: str, value: int) -> None:
        cd = self.cdesign
        slot = cd.slot_of[name]
        old = self.st[slot]
        new = value & cd.masks[slot]
        self.st[slot] = new
        if cd.levelized:
            self._mark_external_masked(slot, old ^ new)

    def _trigger_snapshot(self) -> List[int]:
        st = self.st
        return [st[s] & 1 for s in self.cdesign.trigger_slots]

    def _mark_external(self, pseudo_slot: int) -> None:
        self._mark_external_masked(pseudo_slot, -1)

    def _mark_external_masked(self, pseudo_slot: int, mask: int) -> None:
        """An out-of-schedule write landed on ``pseudo_slot``: re-run its
        readers *and* its driver (so a poked comb-driven net is restored,
        exactly as the interpreter's full-pass settle would).  ``mask``
        is the changed-bit mask (``old ^ new``; -1 = unknown/all):
        readers with a recorded read mask that does not intersect it —
        e.g. a static part-select of untouched bits of a wide bus — are
        skipped."""
        cd = self.cdesign
        queued = self._queued
        heap = self._heap
        pos_of = cd.pos_of
        readers = cd.readers.get(pseudo_slot, ())
        if readers:
            read_masks = cd.read_masks.get(pseudo_slot)
            skipped = 0
            for index, node in enumerate(readers):
                if read_masks is not None and not (read_masks[index] & mask):
                    skipped += 1
                    continue
                if not queued[node]:
                    queued[node] = 1
                    heapq.heappush(heap, pos_of[node])
            if skipped:
                self.stat_reader_skips += skipped
                obs.count("sim.dirty.reader_skips", skipped)
        for node in cd.writers.get(pseudo_slot, ()):
            if not queued[node]:
                queued[node] = 1
                heapq.heappush(heap, pos_of[node])

    # -- settle --------------------------------------------------------------

    def settle(self) -> None:
        """Propagate combinational logic (dirty cone, or fixpoint fallback)."""
        if self.cdesign.levelized:
            self._settle_levelized()
        else:
            self._settle_fixpoint()

    def _settle_levelized(self) -> None:
        heap = self._heap
        if not heap:
            return
        cd = self.cdesign
        st = self.st
        mems = self.mem_data
        nodes = cd.nodes
        topo = cd.topo
        pos_of = cd.pos_of
        readers = cd.readers
        queued = self._queued
        pop = heapq.heappop
        push = heapq.heappush
        while heap:
            node = topo[pop(heap)]
            queued[node] = 0
            changed = nodes[node](st, mems)
            if changed:
                for ps in changed:
                    for reader in readers.get(ps, ()):
                        if not queued[reader]:
                            queued[reader] = 1
                            push(heap, pos_of[reader])

    def _settle_fixpoint(self) -> None:
        st = self.st
        mems = self.mem_data
        nodes = self.cdesign.nodes
        for _ in range(self._max_rounds):
            changed = False
            for run in nodes:
                if run(st, mems):
                    changed = True
            if not changed:
                return
        raise SimulationError(
            "combinational logic failed to settle "
            f"within {self._max_rounds} rounds (combinational loop?)"
        )

    # -- sequential execution ------------------------------------------------

    def _fire_edges(self, snapshot: List[int]) -> None:
        cd = self.cdesign
        st = self.st
        trigger_slots = cd.trigger_slots
        seq = cd.seq
        for _ in range(self._max_rounds):
            current = [st[s] & 1 for s in trigger_slots]
            triggered = [
                proc
                for proc in seq
                if any(
                    snapshot[ti] != current[ti] and current[ti] == want
                    for want, ti in proc[0]
                )
            ]
            if not triggered:
                return
            self._run_seq_blocks(triggered)
            self.settle()
            snapshot = current
        raise SimulationError(
            "edge events failed to quiesce (oscillating clock loop?)"
        )

    def _run_seq_blocks(self, procs) -> None:
        cd = self.cdesign
        st = self.st
        mems = self.mem_data
        n_signals = cd.n_signals
        pending: List[tuple] = []
        changed: List[int] = []
        masks: Dict[int, int] = {}
        for _, body in procs:
            overlay: Dict[int, int] = {}
            mem_overlay: Dict[Tuple[int, int], int] = {}
            body(st, mems, overlay, mem_overlay, pending)
            # Blocking writes commit with the block; nonblocking updates
            # commit once, after every triggered block ran.
            for slot, value in overlay.items():
                old = st[slot]
                if old != value:
                    st[slot] = value
                    changed.append(slot)
                    masks[slot] = masks.get(slot, 0) | (old ^ value)
            for (mem_slot, idx), value in mem_overlay.items():
                column = mems[mem_slot]
                if column[idx] != value:
                    column[idx] = value
                    changed.append(n_signals + mem_slot)
                    masks[n_signals + mem_slot] = -1
        _commit_nba(st, mems, pending, cd.widths, n_signals, changed, masks)
        if cd.levelized:
            for ps in changed:
                self._mark_external_masked(ps, masks.get(ps, -1))
