"""Lane-parallel numpy execution backend: many stimulus streams per visit.

:func:`batch_design` lowers an elaborated design into a
:class:`BatchDesign` — the third cycle-identical backend after the
interpreter and the scalar compiled backend:

* **lane-parallel state** — every signal slot holds a numpy ``int64``
  array of shape ``[n_lanes]`` (memories ``[depth, n_lanes]``), so one
  node visit evaluates every lane at once;
* **vectorized closures** — the expression/statement emitters of
  :class:`repro.sim.compile._Compiler` are re-emitted over vectorized
  integer ops: masking, two's-complement sign correction for signed
  compares/divides/shifts, ``np.where`` for selects, and per-lane
  predicate masks for control flow (``if``/``case``/``for`` execute every
  reachable branch, with writes merged only into active lanes);
* **full-level sweeps** — the PR-3 levelized schedule is reused, but a
  settle runs the whole topologically sorted schedule once instead of
  chasing a dirty cone: with many lanes a single vectorized sweep beats
  per-lane cone chasing.

Per-slot storage is picked per design by a width census
(:func:`lane_representation`) over three *lane representations*:

* ``int64`` — the baseline: one ``int64`` per lane, masked arithmetic;
* ``spill`` — multi-word python-int lanes (``object`` dtype) for designs
  carrying >63-bit signals or memories, which previously fell back to
  the scalar loop; numpy dispatches the same vectorized lowering to the
  python-int dunders, exact at any width (see :class:`_SpillCompiler`);
* ``bitslice`` — for 1-bit-dominated control designs, each bit position
  packs all lanes into one int and logic lowers to a handful of bitwise
  ops per node (:mod:`repro.sim.bitslice`); arithmetic-heavy nodes stay
  on the embedded int64 image and convert at the boundary.

The backend is intentionally narrower than the scalar one, with a
*scalar-fallback contract* mirroring the fixpoint-fallback contract of
the compiled backend:

* designs whose combinational region cannot be levelized raise
  :class:`UnbatchableDesign` at lowering — callers (the ``Simulator``
  facade with ``backend="batch"``, :class:`~repro.sim.testbench.BatchTestbench`
  users, the vereval fast path) then fall back to the scalar backends,
  which preserves ``SimulationError`` classification per lane (pinning
  ``REPRO_SIM_LANES=int64`` restores the historical wide-design
  fallback as well);
* the rare runtime construct a bounded lane cannot represent (a dynamic
  field write landing above the representation's write budget — bit 62
  for int64 lanes, ``width + 64`` for spill) raises
  :class:`BatchDivergence` (a ``SimulationError``), again routing
  callers to the scalar replay.

Lane-for-lane identity with the scalar compiled backend — values *and*
error classification — is enforced by ``tests/test_sim_batch.py`` across
every ``vgen`` family, the vereval problem set, and hypothesis draws.

Lockstep candidate checking
---------------------------

The lanes axis can also run over *candidates* instead of stimulus
streams: :func:`build_lockstep_group` takes N structurally compatible
designs (same signals/memories, same levelized schedule shape — see
:func:`lockstep_shape_digest`) and builds one :class:`LockstepGroup`
whose :class:`LockstepSimulator` steps every candidate in lockstep under
one shared stimulus.  Node bodies are deduplicated by AST fingerprint —
candidates that differ in a single expression share every other node's
vectorized closure — and each distinct variant runs once per visit with
a per-lane predicate selecting the candidates it belongs to.  The
runtime adds two schedule refinements over the plain full-level sweep:

* **lane retirement** — :meth:`LockstepSimulator.retire_lanes` drops
  lanes (candidates) whose verdict is already decided; retired lanes are
  excluded from every statement predicate and every edge trigger, so a
  group where most candidates mismatch early converges to the cost of
  the survivors;
* **dirty-level skipping** — a settle walks the levelized schedule but
  runs only nodes whose read set intersects the slots written since the
  last settle (pokes, sequential-block commits); untouched levels of the
  schedule are skipped entirely, mirroring the scalar backend's
  fanout-driven dirty cone at whole-level, all-lanes granularity.

The checking protocol built on top of this lives in
:func:`repro.vereval.harness.check_candidates_lockstep`; groups or lanes
the lockstep runner cannot carry replay on the scalar backends under the
same scalar-fallback contract as everything above.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.verilog import ast
from repro.sim import eval as _ev
from repro.sim.elaborate import Design
from repro.sim.compile import (
    CompiledDesign,
    UncompilableDesign,
    _Compiler,
    compile_design,
)
from repro.sim.simulator import _MAX_LOOP_ITERS, Simulator

__all__ = [
    "BatchDesign",
    "BatchDivergence",
    "BatchSimulator",
    "LockstepGroup",
    "LockstepSimulator",
    "REPRESENTATIONS",
    "UnbatchableDesign",
    "batch_design",
    "build_lockstep_group",
    "configure_lane_representation",
    "configured_lane_representation",
    "is_stateless_comb",
    "lane_representation",
    "lockstep_shape_digest",
    "make_batch_simulator",
]

#: int64 lanes hold nonnegative two's-complement values in bits 0..62;
#: any wider signal (or expression) cannot be represented per lane.
_MAX_LANE_WIDTH = 63

_I64 = np.int64

#: the selectable lane representations, census-picked per design:
#: ``int64`` (one int64 per lane), ``spill`` (python-int object lanes for
#: >63-bit designs), ``bitslice`` (one bit-plane int packing all lanes,
#: for 1-bit-dominated designs — see :mod:`repro.sim.bitslice`)
REPRESENTATIONS = ("int64", "spill", "bitslice")

_REP_ENV = "REPRO_SIM_LANES"

#: process-wide pin; None defers to the environment, "auto" to the census
_rep_override: Optional[str] = None


def configure_lane_representation(rep: Optional[str]) -> Optional[str]:
    """Pin the lane representation process-wide; returns the previous pin.

    ``None`` defers to ``REPRO_SIM_LANES`` again; ``"auto"`` forces the
    census even if the environment pins one.  Evaluation stages call
    this in pool workers so a run's pin survives executor start methods
    that do not inherit the environment.
    """
    global _rep_override
    if rep is not None and rep != "auto" and rep not in REPRESENTATIONS:
        raise ValueError(
            f"unknown lane representation {rep!r}; expected one of "
            f"{REPRESENTATIONS + ('auto',)}"
        )
    previous = _rep_override
    _rep_override = rep
    return previous


def configured_lane_representation() -> Optional[str]:
    """The active pin, or None when the per-design census decides."""
    rep = _rep_override
    if rep is None:
        rep = os.environ.get(_REP_ENV) or None
    if rep in (None, "auto"):
        return None
    if rep not in REPRESENTATIONS:
        raise ValueError(
            f"{_REP_ENV}={rep!r} is not one of {REPRESENTATIONS + ('auto',)}"
        )
    return rep


def lane_representation(design: Design) -> str:
    """Width-census pick of the lane representation for ``design``.

    Any signal or memory wider than the int64 lane budget forces
    ``"spill"`` (python-int lanes run the design instead of falling back
    to the scalar loop).  Narrow designs dominated by 1-bit nets and
    without memories pick ``"bitslice"``; everything else stays on
    ``"int64"``.  A :func:`configure_lane_representation` /
    ``REPRO_SIM_LANES`` pin overrides the census — except that pinning a
    wide design to ``"int64"`` restores the historical
    :class:`UnbatchableDesign` → scalar-fallback behaviour (the pin the
    fallback-path tests use).
    """
    widths = [sig.width for sig in design.signals.values()]
    mem_widths = [memory.width for memory in design.memories.values()]
    wide = any(w > _MAX_LANE_WIDTH for w in widths) or any(
        w > _MAX_LANE_WIDTH for w in mem_widths
    )
    pin = configured_lane_representation()
    if wide:
        return "int64" if pin == "int64" else "spill"
    if pin is not None:
        return pin
    one_bit = sum(1 for w in widths if w == 1)
    if (
        widths
        and not mem_widths
        and 2 * one_bit >= len(widths)
        and sum(widths) <= 256
        and max(widths) <= 16
    ):
        return "bitslice"
    return "int64"


class UnbatchableDesign(UncompilableDesign):
    """The design cannot be lowered to int64 lane-parallel form.

    Subclasses :class:`~repro.sim.compile.UncompilableDesign` so every
    facade that already falls back to a scalar backend on uncompilable
    designs handles unbatchable ones the same way.
    """


class BatchDivergence(SimulationError):
    """A lane hit a construct int64 lanes cannot represent at runtime.

    Raised (for example) when a dynamic bit/part write lands above bit 62
    — the scalar backends keep such out-of-range bits in raw state, which
    an int64 lane cannot.  Callers replay the affected episode on the
    scalar backend, so verdicts stay lane-for-lane identical.
    """


def _parity_folds(width: int) -> Tuple[int, ...]:
    """Descending power-of-two xor-fold shifts covering ``width`` bits."""
    shifts: List[int] = []
    shift = 1
    while shift < max(width, 2):
        shifts.append(shift)
        shift <<= 1
    shifts.reverse()
    return tuple(shifts)


def _parity(v, shifts: Tuple[int, ...] = (32, 16, 8, 4, 2, 1)):
    """Per-lane XOR reduction (population-count parity) via xor-folding."""
    for shift in shifts:
        v = v ^ (v >> shift)
    return v & 1


def _bit_length_folds(width: int) -> Tuple[int, ...]:
    """Descending power-of-two probe shifts for values below 2**width."""
    shift = 1
    while (2 * shift - 1) < max(width - 1, 1):
        shift <<= 1
    shifts: List[int] = []
    while shift:
        shifts.append(shift)
        shift >>= 1
    return tuple(shifts)


def _bit_length(v, shifts: Tuple[int, ...] = (32, 16, 8, 4, 2, 1)):
    """Vectorized ``int.bit_length`` for nonnegative lane values."""
    out = np.zeros_like(v)
    for shift in shifts:
        big = v >= (1 << shift)
        out = out + np.where(big, shift, 0)
        v = np.where(big, v >> shift, v)
    return out + (v > 0)


def _signed(v, width: int):
    """Two's-complement reinterpretation at ``width`` (vector-safe)."""
    sign_bit = 1 << (width - 1)
    return (v ^ sign_bit) - sign_bit


class BatchDesign(CompiledDesign):
    """Compile-once lane-parallel execution image of one design."""

    __slots__ = ("n_lanes", "lane_ix", "ones", "sched_nodes", "nodes_pred",
                 "comb_latched", "representation", "lane_dtype", "shift_cap")

    def __init__(self) -> None:
        super().__init__()
        self.n_lanes = 1
        self.lane_ix: np.ndarray = np.arange(1)
        self.ones: np.ndarray = np.ones(1, dtype=bool)
        #: combinational nodes pre-ordered by the levelized schedule
        self.sched_nodes: Tuple = ()
        #: per node (declaration order, like ``nodes``): a predicated
        #: runner ``run(st, mems, pred)`` writing only lanes in ``pred``
        #: — the building block of lockstep groups, where one node
        #: position carries different bodies for different lanes
        self.nodes_pred: Tuple = ()
        #: True when some comb block writes a signal only conditionally
        #: (a combinational latch): the signal then holds state between
        #: settles, so outputs are not a pure function of inputs
        self.comb_latched = False
        #: which of :data:`REPRESENTATIONS` this image was lowered for
        self.representation = "int64"
        #: lane-array dtype (``object`` for spill: python-int lanes)
        self.lane_dtype = _I64
        #: clamp for nonblocking-commit shift counts (spill lanes admit
        #: far larger shifts than the int64 budget)
        self.shift_cap = _MAX_LANE_WIDTH


def batch_design(design: Design, n_lanes: int,
                 representation: Optional[str] = None) -> BatchDesign:
    """Lower ``design`` for ``n_lanes`` lanes, caching per (lanes, rep).

    The lane representation defaults to the :func:`lane_representation`
    width census (int64 / spill / bitslice); pass one explicitly to
    bypass the census.  Raises :class:`UnbatchableDesign` when the
    design cannot be lane lowered under the chosen representation (not
    levelizable, or wider than an int64 lane budget that applies); the
    negative outcome is cached too, so repeated probes stay cheap.  The
    cache is dropped on pickling (``Design.__getstate__``), like the
    scalar compile cache.  ``n_lanes`` must be at least 1; asking for
    zero or negative lanes is a caller bug surfaced as ``ValueError``
    instead of an empty-array failure deep inside numpy.

    A bitslice request that the plane lowerer cannot honour degrades to
    the int64 image (counted as ``bitslice.fallback_int64``) — bitslice
    is an accelerator, never a correctness dependency.
    """
    if n_lanes < 1:
        raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
    rep = representation or lane_representation(design)
    if rep not in REPRESENTATIONS:
        raise ValueError(
            f"unknown lane representation {rep!r}; expected one of "
            f"{REPRESENTATIONS}"
        )
    cache = getattr(design, "_batch", None)
    if cache is None:
        cache = {}
        design._batch = cache
    key = (n_lanes, rep)
    cached = cache.get(key, False)
    if cached is not False:
        if cached is None:
            raise UnbatchableDesign("design is not lane-parallelizable")
        return cached
    try:
        if rep == "bitslice":
            from repro.sim import bitslice as _bitslice

            bd = _bitslice.compile_bitslice(design, n_lanes)
        elif rep == "spill":
            bd = _SpillCompiler(design, n_lanes).compile()
        else:
            bd = _BatchCompiler(design, n_lanes).compile()
    except UncompilableDesign:
        cache[key] = None
        raise
    obs.count(f"batch.rep.{bd.representation}")
    cache[key] = bd
    return bd


def make_batch_simulator(design: Design, n_lanes: int = 1,
                         max_settle_rounds: Optional[int] = None,
                         representation: Optional[str] = None):
    """Census-dispatching simulator constructor.

    Returns a :class:`~repro.sim.bitslice.BitsliceSimulator` when the
    width census (or an explicit ``representation``) picks the bit-plane
    backend and the design plane-lowers, else a plain
    :class:`BatchSimulator` over the int64/spill image.  This is the
    constructor the sweep and checking fast paths use; constructing
    :class:`BatchSimulator` directly on a bitslice-census design simply
    runs its embedded int64 image.
    """
    bd = batch_design(design, n_lanes, representation)
    if bd.representation == "bitslice":
        from repro.sim.bitslice import BitsliceSimulator

        return BitsliceSimulator(design, bd, max_settle_rounds)
    return BatchSimulator(
        design, max_settle_rounds, n_lanes=n_lanes,
        representation=bd.representation,
    )


def is_stateless_comb(bd: BatchDesign) -> bool:
    """No sequential blocks, memory writes, or combinational latches.

    Such a design's outputs after settle are a pure function of its
    current input values, so independent stimulus vectors can ride one
    lane each — the basis of the combinational all-vectors fast path in
    :mod:`repro.vereval.harness`.  A comb block that writes a signal
    only on some paths (``always @* if (en) y = a;``) is a latch: the
    signal carries state between settles, so such designs are excluded
    even though they levelize.
    """
    if bd.seq or bd.comb_latched:
        return False
    return all(ps < bd.n_signals for ps in bd.writers)


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------


class _BatchCompiler(_Compiler):
    """Re-emits the scalar compiler's lowering over numpy lane arrays.

    Sizing, signedness, constant folding, read/write-set analysis, and
    the levelized scheduler are inherited from
    :class:`repro.sim.compile._Compiler`; only closure emission differs.
    Expression closures keep the scalar signature
    ``(st, mems, o, mo) -> int64 array`` (constants stay python ints and
    broadcast); statement closures gain a lane-predicate argument:
    ``(st, mems, o, mo, nba, pred)``.

    The class attributes parameterize the lane representation; the
    :class:`_SpillCompiler` subclass overrides them (plus a handful of
    emission hooks) to lower the same designs onto python-int object
    lanes with no width budget.
    """

    #: which of :data:`REPRESENTATIONS` this compiler emits
    REPRESENTATION = "int64"
    #: dtype of lane state arrays
    LANE_DTYPE = _I64
    #: max representable signal/expression width; None disables the check
    WIDTH_BUDGET: Optional[int] = _MAX_LANE_WIDTH
    #: clamp for dynamic *right*-shift counts (right shifts are safe at
    #: any clamp; int64 lanes additionally need counts kept below 64)
    SHIFT_CAP = _MAX_LANE_WIDTH

    def __init__(self, design: Design, n_lanes: int) -> None:
        super().__init__(design)
        self.n_lanes = n_lanes
        self.lane_ix = np.arange(n_lanes)
        self.ones = np.ones(n_lanes, dtype=bool)
        self._latched = False
        #: predicated comb-node runners, appended in node build order
        self._pred_nodes: List = []
        for width in self.widths:
            self._check_width(width)
        for width in self.mem_widths:
            self._check_width(width)

    def _check_width(self, width: int) -> int:
        if self.WIDTH_BUDGET is not None and width > self.WIDTH_BUDGET:
            raise UnbatchableDesign(
                f"width {width} exceeds the {self.WIDTH_BUDGET}-bit int64 "
                "lane budget"
            )
        return width

    def _shl_clamp(self, width: int) -> int:
        """Clamp for *left*-shift counts producing ``width``-bit values.

        int64 lanes hold values below 2**63, so clamping at 63 is exact
        (a shift of >= width bits masks to zero either way) and keeps
        numpy's shift count in range.
        """
        return _MAX_LANE_WIDTH

    def _dynamic_write_limit(self, sig_width: int) -> int:
        """Highest bit position a dynamic field write may touch.

        Beyond it the emitted guard raises :class:`BatchDivergence` and
        the caller replays on the scalar backend (which keeps such
        out-of-range bits in raw state — int64 lanes cannot).
        """
        return _MAX_LANE_WIDTH

    @staticmethod
    def _pred_of(arr):
        """Coerce a lane condition to a predicate array (int64: already
        a numpy bool array — identity)."""
        return arr

    def _as_index(self, fn):
        """Wrap an index closure for fancy-indexing use (int64: as-is)."""
        return fn

    #: dtype 0/1 results of comparisons/reductions are cast to —
    #: ``object`` for spill so bool-element arrays keep python-int
    #: semantics under the arbitrary-width masks downstream
    BOOL_DTYPE = _I64

    def _new_image(self) -> BatchDesign:
        return BatchDesign()

    def compile(self) -> BatchDesign:
        bd = super().compile()
        if not bd.levelized:
            raise UnbatchableDesign(
                "combinational region is not levelizable (scalar fixpoint "
                "fallback applies)"
            )
        bd.n_lanes = self.n_lanes
        bd.lane_ix = self.lane_ix
        bd.ones = self.ones
        bd.sched_nodes = tuple(bd.nodes[i] for i in bd.topo)
        bd.nodes_pred = tuple(self._pred_nodes)
        bd.comb_latched = self._latched
        bd.representation = self.REPRESENTATION
        bd.lane_dtype = self.LANE_DTYPE
        bd.shift_cap = self.SHIFT_CAP
        return bd

    def _lvalue_width(self, target: ast.Expr) -> int:
        return self._check_width(super()._lvalue_width(target))

    # -- expression emission -------------------------------------------------

    def _lanes_of(self, value):
        """Force a closure result to a full ``[n_lanes]`` int64 array."""
        if isinstance(value, np.ndarray) and value.shape == (self.n_lanes,):
            return value
        arr = np.empty(self.n_lanes, dtype=_I64)
        arr[:] = value
        return arr

    def _compile_operand(self, expr: ast.Expr, width: int, ov: bool):
        own = self._self_width(expr)
        fn = self._compile_eval(expr, max(own, width), ov)
        if width <= own:
            return fn
        ext_mask = (1 << width) - 1
        if self._is_signed(expr):
            own_mask = (1 << own) - 1
            sign_bit = 1 << (own - 1)

            def signed_ext(st, mems, o, mo, _f=fn):
                v = _f(st, mems, o, mo) & own_mask
                return ((v ^ sign_bit) - sign_bit) & ext_mask

            return signed_ext
        return lambda st, mems, o, mo, _f=fn: _f(st, mems, o, mo) & ext_mask

    def _emit_const(self, value: int):
        """Closure for a folded constant (int64: a broadcasting int)."""
        return lambda st, mems, o, mo, _v=value: _v

    def _compile_eval(self, expr: ast.Expr, width: int, ov: bool):
        self._check_width(width)
        if self._is_static(expr):
            try:
                value = _ev._eval(expr, self._static, width)
            except SimulationError as exc:
                raise UncompilableDesign(str(exc)) from None
            if (self.WIDTH_BUDGET is not None
                    and value.bit_length() > self.WIDTH_BUDGET):
                raise UnbatchableDesign(
                    f"constant {value} exceeds the int64 lane budget"
                )
            return self._emit_const(value)

        if isinstance(expr, ast.Identifier):
            name = expr.name
            if name in self.mem_of:
                raise UncompilableDesign(
                    f"memory {name!r} used without an index"
                )
            raw = self._emit_read_raw(name, ov)
            m = self.masks_for(name)
            return lambda st, mems, o, mo, _f=raw, _m=m: _f(st, mems, o, mo) & _m

        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr, width, ov)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr, width, ov)
        if isinstance(expr, ast.Ternary):
            cond = self._compile_expr(expr.cond, 0, ov)
            then = self._compile_operand(expr.then, width, ov)
            other = self._compile_operand(expr.other, width, ov)
            # Both arms evaluate (expression evaluation is effect-free and
            # error-free by construction); np.where selects per lane.
            return lambda st, mems, o, mo: np.where(
                np.not_equal(cond(st, mems, o, mo), 0),
                then(st, mems, o, mo),
                other(st, mems, o, mo),
            )
        if isinstance(expr, ast.Concat):
            parts = []
            offset = 0
            for part in reversed(expr.parts):
                pw = self._self_width(part)
                parts.append((self._compile_eval(part, pw, ov), offset))
                offset += pw
            self._check_width(offset)
            parts.reverse()
            m = (1 << max(width, 1)) - 1

            def concat(st, mems, o, mo, _parts=tuple(parts), _m=m):
                out = 0
                for fn, off in _parts:
                    out = out | (fn(st, mems, o, mo) << off)
                return out & _m

            return concat
        if isinstance(expr, ast.Repeat):
            times = self._static_int(expr.count)
            inner_width = self._self_width(expr.inner)
            self._check_width(inner_width * max(times, 1))
            inner = self._compile_eval(expr.inner, inner_width, ov)
            factor = 0
            for i in range(times):
                factor |= 1 << (inner_width * i)
            m = (1 << max(width, 1)) - 1
            return lambda st, mems, o, mo: (inner(st, mems, o, mo) * factor) & m
        if isinstance(expr, ast.Index):
            return self._compile_index(expr, ov)
        if isinstance(expr, ast.PartSelect):
            name = self._base_name(expr.base)
            msb = self._static_int(expr.msb)
            lsb = self._static_int(expr.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            self._check_width(msb - lsb + 1)
            sel_mask = (1 << (msb - lsb + 1)) - 1
            # Lane values are < 2**63, so shifts past 62 read as 0 either
            # way; the clamp only keeps numpy's shift count in range
            # (spill raises the cap — python-int lanes shift exactly).
            shift = min(lsb, self.SHIFT_CAP)
            raw = self._emit_read_raw(name, ov)
            return lambda st, mems, o, mo: (
                raw(st, mems, o, mo) >> shift
            ) & sel_mask
        if isinstance(expr, ast.IndexedPartSelect):
            name = self._base_name(expr.base)
            start = self._compile_expr(expr.start, 0, ov)
            sel_width = self._static_int(expr.width)
            self._check_width(sel_width)
            sel_mask = (1 << sel_width) - 1
            ascending = expr.ascending
            raw = self._emit_read_raw(name, ov)
            cap = self.SHIFT_CAP

            def indexed(st, mems, o, mo):
                lo = start(st, mems, o, mo)
                if not ascending:
                    lo = lo - sel_width + 1
                lo = np.maximum(lo, 0)
                return np.right_shift(
                    raw(st, mems, o, mo), np.minimum(lo, cap)
                ) & sel_mask

            return indexed
        if isinstance(expr, ast.SystemCall):
            return self._compile_system_call(expr, width, ov)
        raise UncompilableDesign(f"cannot compile {type(expr).__name__}")

    def _compile_unary(self, expr: ast.Unary, width: int, ov: bool):
        op = expr.op
        bdt = self.BOOL_DTYPE
        if op in ("&", "~&", "|", "~|", "^", "~^"):
            operand_width = self._self_width(expr.operand)
            self._check_width(operand_width)
            fn = self._compile_eval(expr.operand, operand_width, ov)
            invert = 1 if op.startswith("~") else 0
            if op in ("&", "~&"):
                full = (1 << operand_width) - 1
                return lambda st, mems, o, mo: np.equal(
                    fn(st, mems, o, mo), full
                ).astype(bdt) ^ invert
            if op in ("|", "~|"):
                return lambda st, mems, o, mo: np.not_equal(
                    fn(st, mems, o, mo), 0
                ).astype(bdt) ^ invert
            folds = _parity_folds(operand_width)
            return lambda st, mems, o, mo: _parity(
                fn(st, mems, o, mo), folds
            ) ^ invert
        if op == "!":
            fn = self._compile_expr(expr.operand, 0, ov)
            return lambda st, mems, o, mo: np.equal(
                fn(st, mems, o, mo), 0
            ).astype(bdt)
        fn = self._compile_operand(expr.operand, width, ov)
        m = (1 << width) - 1 if width > 0 else 0
        if op == "~":
            return lambda st, mems, o, mo: ~fn(st, mems, o, mo) & m
        if op == "-":
            return lambda st, mems, o, mo: -fn(st, mems, o, mo) & m
        if op == "+":
            return fn
        raise UncompilableDesign(f"unsupported unary operator {op!r}")

    def _compile_binary(self, expr: ast.Binary, width: int, ov: bool):
        op = expr.op
        bdt = self.BOOL_DTYPE
        if op in ("&&", "||"):
            lhs = self._compile_expr(expr.lhs, 0, ov)
            rhs = self._compile_expr(expr.rhs, 0, ov)
            if op == "&&":
                return lambda st, mems, o, mo: np.logical_and(
                    np.not_equal(lhs(st, mems, o, mo), 0),
                    np.not_equal(rhs(st, mems, o, mo), 0),
                ).astype(bdt)
            return lambda st, mems, o, mo: np.logical_or(
                np.not_equal(lhs(st, mems, o, mo), 0),
                np.not_equal(rhs(st, mems, o, mo), 0),
            ).astype(bdt)
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            cmp_width = max(
                self._self_width(expr.lhs), self._self_width(expr.rhs)
            )
            self._check_width(cmp_width)
            signed = self._is_signed(expr.lhs) and self._is_signed(expr.rhs)
            lhs = self._compile_operand(expr.lhs, cmp_width, ov)
            rhs = self._compile_operand(expr.rhs, cmp_width, ov)
            ufunc = {
                "==": np.equal, "===": np.equal,
                "!=": np.not_equal, "!==": np.not_equal,
                "<": np.less, "<=": np.less_equal,
                ">": np.greater, ">=": np.greater_equal,
            }[op]
            if signed:
                def compare(st, mems, o, mo):
                    a = _signed(lhs(st, mems, o, mo), cmp_width)
                    b = _signed(rhs(st, mems, o, mo), cmp_width)
                    return ufunc(a, b).astype(bdt)
            else:
                def compare(st, mems, o, mo):
                    return ufunc(
                        lhs(st, mems, o, mo), rhs(st, mems, o, mo)
                    ).astype(bdt)
            return compare
        if op in ("<<", ">>", "<<<", ">>>"):
            lhs = self._compile_operand(expr.lhs, width, ov)
            amount_fn = self._compile_expr(expr.rhs, 0, ov)
            m = (1 << width) - 1 if width > 0 else 0
            # Lane values are nonnegative and < 2**63, so clamping the
            # shift count to 63 preserves the scalar backend's semantics:
            # a shift of >= width bits masks/reads to zero either way.
            # Spill raises the left-shift clamp to the scalar backend's
            # own width+64 and leaves right shifts effectively unclamped.
            shl_cap = self._shl_clamp(width)
            shr_cap = self.SHIFT_CAP
            if op in ("<<", "<<<"):
                def shl(st, mems, o, mo):
                    amount = np.minimum(
                        amount_fn(st, mems, o, mo), shl_cap
                    )
                    return np.left_shift(lhs(st, mems, o, mo), amount) & m

                return shl
            if op == ">>>" and self._is_signed(expr.lhs):
                def sra(st, mems, o, mo):
                    amount = np.minimum(
                        amount_fn(st, mems, o, mo), shr_cap
                    )
                    v = _signed(lhs(st, mems, o, mo) & m, width)
                    return np.right_shift(v, amount) & m

                return sra

            def shr(st, mems, o, mo):
                amount = np.minimum(
                    amount_fn(st, mems, o, mo), shr_cap
                )
                return np.right_shift(lhs(st, mems, o, mo), amount)

            return shr
        if op == "**":
            base = self._compile_operand(expr.lhs, width, ov)
            exp_fn = self._compile_expr(expr.rhs, 0, ov)
            m = (1 << width) - 1 if width > 0 else 0

            def power(st, mems, o, mo):
                exponent = np.minimum(exp_fn(st, mems, o, mo), 64)
                # int64 power wraps mod 2**64, which masking makes exact.
                return np.power(base(st, mems, o, mo), exponent) & m

            return power

        signed = self._is_signed(expr.lhs) and self._is_signed(expr.rhs)
        lhs = self._compile_operand(expr.lhs, width, ov)
        rhs = self._compile_operand(expr.rhs, width, ov)
        m = (1 << width) - 1 if width > 0 else 0
        if op == "+":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) + rhs(st, mems, o, mo)
            ) & m
        if op == "-":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) - rhs(st, mems, o, mo)
            ) & m
        if op == "*":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) * rhs(st, mems, o, mo)
            ) & m
        if op in ("/", "%"):
            want_div = op == "/"
            if signed:
                def signed_divmod(st, mems, o, mo):
                    a = _signed(lhs(st, mems, o, mo), width)
                    b = _signed(rhs(st, mems, o, mo), width)
                    safe_b = np.where(np.equal(b, 0), 1, b)
                    quotient = np.abs(a) // np.abs(safe_b)
                    quotient = np.where(
                        np.not_equal(a < 0, b < 0), -quotient, quotient
                    )
                    result = quotient if want_div else a - b * quotient
                    return np.where(np.equal(b, 0), 0, result) & m

                return signed_divmod

            def divmod_fn(st, mems, o, mo):
                b = rhs(st, mems, o, mo)
                safe_b = np.where(np.equal(b, 0), 1, b)
                a = lhs(st, mems, o, mo)
                result = a // safe_b if want_div else a % safe_b
                return np.where(np.equal(b, 0), 0, result) & m

            return divmod_fn
        if op == "&":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) & rhs(st, mems, o, mo)
            )
        if op == "|":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) | rhs(st, mems, o, mo)
            )
        if op == "^":
            return lambda st, mems, o, mo: (
                lhs(st, mems, o, mo) ^ rhs(st, mems, o, mo)
            )
        if op in ("^~", "~^"):
            return lambda st, mems, o, mo: ~(
                lhs(st, mems, o, mo) ^ rhs(st, mems, o, mo)
            ) & m
        raise UncompilableDesign(f"unsupported binary operator {op!r}")

    def _compile_index(self, expr: ast.Index, ov: bool):
        name = self._base_name(expr.base)
        index_fn = self._compile_expr(expr.index, 0, ov)
        mem_slot = self.mem_of.get(name)
        if mem_slot is not None:
            index_fn = self._as_index(index_fn)
            base = self.mem_bases[mem_slot]
            depth = self.mem_depths[mem_slot]
            lane_ix = self.lane_ix
            use_overlay = ov
            # When the index expression's own width bounds it inside the
            # memory, the range guards are statically dead: read with one
            # fancy index instead of clip + compare + select per visit.
            index_width = self._self_width(expr.index)
            always_in_range = (
                base == 0
                and index_width <= _MAX_LANE_WIDTH
                and (1 << index_width) - 1 < depth
            )

            if always_in_range:
                def read_mem_direct(st, mems, o, mo, _ms=mem_slot):
                    column = mo.get(_ms) if use_overlay else None
                    if column is None:
                        column = mems[_ms]
                    idx = index_fn(st, mems, o, mo)
                    if isinstance(idx, (int, np.integer)):
                        return column[idx].copy()  # rows may mutate later
                    return column[idx, lane_ix]

                return read_mem_direct

            def read_mem(st, mems, o, mo, _ms=mem_slot):
                column = mo.get(_ms) if use_overlay else None
                if column is None:
                    column = mems[_ms]
                idx = index_fn(st, mems, o, mo) - base
                if isinstance(idx, (int, np.integer)):
                    if idx < 0 or idx >= depth:
                        return 0  # out-of-range read: two-state X
                    return column[idx].copy()  # copy: rows may mutate later
                safe = np.clip(idx, 0, depth - 1)
                return np.where(
                    (idx >= 0) & (idx < depth), column[safe, lane_ix], 0
                )

            return read_mem
        raw = self._emit_read_raw(name, ov)
        sig_width = self.widths[self._slot(name)]
        cap = self.SHIFT_CAP

        def read_bit(st, mems, o, mo):
            idx = index_fn(st, mems, o, mo)
            v = np.right_shift(
                raw(st, mems, o, mo), np.minimum(idx, cap)
            ) & 1
            return np.where(idx < sig_width, v, 0)

        return read_bit

    def _compile_system_call(self, expr: ast.SystemCall, width: int, ov: bool):
        name = expr.name
        if name in ("$signed", "$unsigned"):
            if len(expr.args) != 1:
                raise UncompilableDesign(f"{name} takes exactly one argument")
            return self._compile_operand(expr.args[0], width, ov)
        if name == "$clog2":
            if len(expr.args) != 1:
                raise UncompilableDesign("$clog2 takes exactly one argument")
            arg = self._compile_expr(expr.args[0], 0, ov)
            folds = _bit_length_folds(
                max(self._self_width(expr.args[0]), 1)
            )

            def clog2(st, mems, o, mo):
                value = arg(st, mems, o, mo)
                return np.where(
                    value <= 1, 0,
                    _bit_length(np.maximum(value - 1, 1), folds),
                )

            return clog2
        if name in ("$time", "$stime", "$realtime"):
            return lambda st, mems, o, mo: 0
        raise UncompilableDesign(f"unsupported system function {name!r}")

    # -- lvalue emission -----------------------------------------------------

    def _compile_proc_write(self, target: ast.Expr, blocking: bool):
        """Predicated procedural write:
        ``(st, mems, o, mo, nba, value, pred)``."""
        if isinstance(target, ast.Concat):
            widths = [self._lvalue_width(p) for p in target.parts]
            total = sum(widths)
            self._check_width(total)
            writers = []
            offset = total
            for part, part_width in zip(target.parts, widths):
                offset -= part_width
                part_mask = (1 << part_width) - 1
                writers.append(
                    (self._compile_proc_write(part, blocking), offset, part_mask)
                )

            def write_concat(st, mems, o, mo, nba, value, pred):
                for writer, off, pm in writers:
                    writer(st, mems, o, mo, nba, (value >> off) & pm, pred)

            return write_concat

        if isinstance(target, ast.Identifier):
            slot = self._slot(target.name)
            if target.name in self.mem_of:
                raise UncompilableDesign(
                    f"cannot assign whole memory {target.name!r}"
                )
            width = self.widths[slot]
            m = (1 << width) - 1
            if blocking:
                def write_full(st, mems, o, mo, nba, value, pred):
                    cur = o.get(slot)
                    if cur is None:
                        cur = st[slot]
                    o[slot] = np.where(pred, value & m, cur)

                return write_full

            def nba_full(st, mems, o, mo, nba, value, pred):
                nba.append((False, slot, 0, width, value, pred))

            return nba_full

        if isinstance(target, ast.Index):
            name = self._base_name(target.base)
            index_fn = self._compile_expr(target.index, 0, True)
            mem_slot = self.mem_of.get(name)
            if mem_slot is not None:
                index_fn = self._as_index(index_fn)
                base = self.mem_bases[mem_slot]
                depth = self.mem_depths[mem_slot]
                mem_mask = (1 << self.mem_widths[mem_slot]) - 1
                mem_width = self.mem_widths[mem_slot]
                lane_ix = self.lane_ix
                if blocking:
                    def write_mem(st, mems, o, mo, nba, value, pred):
                        idx = index_fn(st, mems, o, mo) - base
                        column = mo.get(mem_slot)
                        if column is None:
                            column = mems[mem_slot].copy()
                            mo[mem_slot] = column
                        v = value & mem_mask
                        if isinstance(idx, (int, np.integer)):
                            if 0 <= idx < depth:
                                column[idx] = np.where(pred, v, column[idx])
                            return
                        sel = pred & (idx >= 0) & (idx < depth)
                        if sel.any():
                            vals = v[sel] if isinstance(v, np.ndarray) else v
                            column[idx[sel], lane_ix[sel]] = vals

                    return write_mem

                def nba_mem(st, mems, o, mo, nba, value, pred):
                    idx = index_fn(st, mems, o, mo) - base
                    nba.append(
                        (True, mem_slot, idx, mem_width, value & mem_mask, pred)
                    )

                return nba_mem
            slot = self._slot(name)
            sig_width = self.widths[slot]
            return self._emit_field_write(
                slot, sig_width, index_fn, 1, blocking, runtime_lo=True
            )

        if isinstance(target, ast.PartSelect):
            name = self._base_name(target.base)
            slot = self._slot(name)
            sig_width = self.widths[slot]
            msb = self._static_int(target.msb)
            lsb = self._static_int(target.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            width = msb - lsb + 1
            return self._emit_field_write(
                slot, sig_width, lsb, width, blocking, runtime_lo=False
            )

        if isinstance(target, ast.IndexedPartSelect):
            name = self._base_name(target.base)
            slot = self._slot(name)
            sig_width = self.widths[slot]
            width = self._static_int(target.width)
            self._check_width(width)
            start_fn = self._compile_expr(target.start, 0, True)
            ascending = target.ascending

            def lo_fn(st, mems, o, mo):
                start = start_fn(st, mems, o, mo)
                lo = start if ascending else start - width + 1
                return np.maximum(lo, 0)

            return self._emit_field_write(
                slot, sig_width, lo_fn, width, blocking, runtime_lo=True
            )

        raise UncompilableDesign(
            f"invalid assignment target {type(target).__name__}"
        )

    def _emit_field_write(self, slot, sig_width, lo, width, blocking,
                          runtime_lo):
        value_mask = (1 << width) - 1
        sig_mask = (1 << sig_width) - 1
        limit = self._dynamic_write_limit(sig_width)

        if not runtime_lo:
            if lo == 0 and width >= sig_width:
                if blocking:
                    def write_full(st, mems, o, mo, nba, value, pred):
                        cur = o.get(slot)
                        if cur is None:
                            cur = st[slot]
                        o[slot] = np.where(pred, value & sig_mask, cur)

                    return write_full

                def nba_full(st, mems, o, mo, nba, value, pred):
                    nba.append((False, slot, 0, width, value, pred))

                return nba_full
            if lo + width > limit:
                # The scalar backends keep such out-of-range bits in raw
                # state; bounded lanes cannot.
                raise UnbatchableDesign(
                    f"static field write at bits [{lo + width - 1}:{lo}] "
                    "exceeds the lane budget"
                )
            field_mask = value_mask << lo
            keep_mask = ~field_mask
            if blocking:
                def write_field(st, mems, o, mo, nba, value, pred):
                    cur = o.get(slot)
                    if cur is None:
                        cur = st[slot]
                    merged = (cur & keep_mask) | (
                        ((value & value_mask) << lo) & field_mask
                    )
                    o[slot] = np.where(pred, merged, cur)

                return write_field

            def nba_field(st, mems, o, mo, nba, value, pred):
                nba.append((False, slot, lo, width, value, pred))

            return nba_field

        lo_fn = lo

        def guard(at, pred):
            bad = pred & (at + width > limit)
            if width >= sig_width:
                bad = bad & np.not_equal(at, 0)
            if np.any(bad):
                raise BatchDivergence(
                    "dynamic field write above the lane budget "
                    f"(bit {limit}+)"
                )

        if blocking:
            def write_dynamic(st, mems, o, mo, nba, value, pred):
                at = lo_fn(st, mems, o, mo)
                guard(at, pred)
                cur = o.get(slot)
                if cur is None:
                    cur = st[slot]
                at_c = np.minimum(at, limit)
                field_mask = value_mask << at_c
                merged = (cur & ~field_mask) | (
                    ((value & value_mask) << at_c) & field_mask
                )
                if width >= sig_width:
                    merged = np.where(
                        np.equal(at, 0), value & sig_mask, merged
                    )
                o[slot] = np.where(pred, merged, cur)

            return write_dynamic

        def nba_dynamic(st, mems, o, mo, nba, value, pred):
            at = lo_fn(st, mems, o, mo)
            guard(at, pred)
            nba.append((False, slot, at, width, value, pred))

        return nba_dynamic

    def _compile_direct_write(self, target: ast.Expr):
        """Continuous-assign write over all lanes: ``(st, mems, value)``.

        No change detection: the full-level sweep makes it unnecessary.
        """
        if isinstance(target, ast.Concat):
            widths = [self._lvalue_width(p) for p in target.parts]
            total = sum(widths)
            self._check_width(total)
            writers = []
            offset = total
            for part, part_width in zip(target.parts, widths):
                offset -= part_width
                part_mask = (1 << part_width) - 1
                writers.append(
                    (self._compile_direct_write(part), offset, part_mask)
                )

            def write_concat(st, mems, value):
                for writer, off, pm in writers:
                    writer(st, mems, (value >> off) & pm)

            return write_concat

        if isinstance(target, ast.Identifier):
            if target.name in self.mem_of:
                raise UncompilableDesign(
                    f"cannot assign whole memory {target.name!r}"
                )
            slot = self._slot(target.name)
            m = (1 << self.widths[slot]) - 1
            lanes_of = self._lanes_of

            def write_full(st, mems, value):
                st[slot] = lanes_of(value & m)

            return write_full

        if isinstance(target, ast.Index):
            name = self._base_name(target.base)
            if name in self.mem_of:
                raise UncompilableDesign(
                    "continuous assignment to memory element is not supported"
                )
            slot = self._slot(name)
            sig_width = self.widths[slot]
            index_fn = self._compile_expr(target.index, 0, False)
            return self._emit_direct_field(slot, sig_width, index_fn, 1, True)

        if isinstance(target, ast.PartSelect):
            name = self._base_name(target.base)
            slot = self._slot(name)
            sig_width = self.widths[slot]
            msb = self._static_int(target.msb)
            lsb = self._static_int(target.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            return self._emit_direct_field(
                slot, sig_width, lsb, msb - lsb + 1, False
            )

        if isinstance(target, ast.IndexedPartSelect):
            name = self._base_name(target.base)
            slot = self._slot(name)
            sig_width = self.widths[slot]
            width = self._static_int(target.width)
            self._check_width(width)
            start_fn = self._compile_expr(target.start, 0, False)
            ascending = target.ascending

            def lo_fn(st, mems, o, mo):
                start = start_fn(st, mems, o, mo)
                lo = start if ascending else start - width + 1
                return np.maximum(lo, 0)

            return self._emit_direct_field(slot, sig_width, lo_fn, width, True)

        raise UncompilableDesign(
            f"invalid assignment target {type(target).__name__}"
        )

    def _emit_direct_field(self, slot, sig_width, lo, width, runtime_lo):
        value_mask = (1 << width) - 1
        sig_mask = (1 << sig_width) - 1
        lanes_of = self._lanes_of
        limit = self._dynamic_write_limit(sig_width)

        if not runtime_lo:
            if lo == 0 and width >= sig_width:
                def write_full(st, mems, value):
                    st[slot] = lanes_of(value & sig_mask)

                return write_full
            if lo + width > limit:
                raise UnbatchableDesign(
                    f"static field write at bits [{lo + width - 1}:{lo}] "
                    "exceeds the lane budget"
                )
            field_mask = value_mask << lo
            keep_mask = ~field_mask

            def write_field(st, mems, value):
                full = st[slot]
                st[slot] = (full & keep_mask) | (
                    ((value & value_mask) << lo) & field_mask
                )

            return write_field

        lo_fn = lo

        def write_dynamic(st, mems, value):
            at = lo_fn(st, mems, None, None)
            bad = at + width > limit
            if width >= sig_width:
                bad = bad & np.not_equal(at, 0)
            if np.any(bad):
                raise BatchDivergence(
                    "dynamic field write above the lane budget "
                    f"(bit {limit}+)"
                )
            full = st[slot]
            at_c = np.minimum(at, limit)
            field_mask = value_mask << at_c
            merged = (full & ~field_mask) | (
                ((value & value_mask) << at_c) & field_mask
            )
            if width >= sig_width:
                merged = np.where(np.equal(at, 0), value & sig_mask, merged)
            st[slot] = lanes_of(merged)

        return write_dynamic

    # -- statement emission --------------------------------------------------

    def _compile_stmt(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.Block):
            compiled = [
                fn
                for fn in (self._compile_stmt(s) for s in stmt.stmts)
                if fn is not None
            ]
            if not compiled:
                return None
            if len(compiled) == 1:
                return compiled[0]
            steps = tuple(compiled)

            def block(st, mems, o, mo, nba, pred):
                for step in steps:
                    step(st, mems, o, mo, nba, pred)

            return block
        if isinstance(stmt, ast.Assign):
            lvalue_width = self._lvalue_width(stmt.target)
            value_fn = self._compile_expr(stmt.value, lvalue_width, True)
            writer = self._compile_proc_write(stmt.target, stmt.blocking)

            def assign(st, mems, o, mo, nba, pred):
                writer(st, mems, o, mo, nba, value_fn(st, mems, o, mo), pred)

            return assign
        if isinstance(stmt, ast.If):
            cond = self._compile_expr(stmt.cond, 0, True)
            then = self._compile_stmt(stmt.then)
            other = self._compile_stmt(stmt.other) if stmt.other else None
            pof = self._pred_of

            def branch(st, mems, o, mo, nba, pred):
                taken = pof(np.not_equal(cond(st, mems, o, mo), 0))
                if then is not None:
                    p = pred & taken
                    if p.any():
                        then(st, mems, o, mo, nba, p)
                if other is not None:
                    p = pred & ~taken
                    if p.any():
                        other(st, mems, o, mo, nba, p)

            return branch
        if isinstance(stmt, ast.Case):
            return self._compile_case(stmt)
        if isinstance(stmt, ast.For):
            init = self._compile_stmt(stmt.init)
            cond = self._compile_expr(stmt.cond, 0, True)
            step = self._compile_stmt(stmt.step)
            body = self._compile_stmt(stmt.body)
            pof = self._pred_of

            def loop(st, mems, o, mo, nba, pred):
                if init is not None:
                    init(st, mems, o, mo, nba, pred)
                active = pred & pof(np.not_equal(cond(st, mems, o, mo), 0))
                iterations = 0
                while active.any():
                    if body is not None:
                        body(st, mems, o, mo, nba, active)
                    if step is not None:
                        step(st, mems, o, mo, nba, active)
                    iterations += 1
                    if iterations > _MAX_LOOP_ITERS:
                        raise SimulationError(
                            f"for-loop exceeded {_MAX_LOOP_ITERS} iterations"
                        )
                    active = active & pof(
                        np.not_equal(cond(st, mems, o, mo), 0)
                    )

            return loop
        if isinstance(stmt, (ast.NullStmt, ast.SystemTaskCall)):
            return None
        raise UncompilableDesign(f"cannot compile {type(stmt).__name__}")

    def _compile_case(self, stmt: ast.Case):
        width = self._self_width(stmt.subject)
        for item in stmt.items:
            for label in item.labels:
                label_width = self._self_width(label)
                if label_width > width:
                    width = label_width
        self._check_width(width)
        subject_fn = self._compile_eval(stmt.subject, width, True)
        wildcard_kind = stmt.kind in ("casez", "casex")
        arms = []
        default_fn = None
        for item in stmt.items:
            body = self._compile_stmt(item.body)
            if item.is_default:
                default_fn = body  # last default wins, as in the interpreter
                continue
            for label in item.labels:
                wildcard = 0
                if wildcard_kind and isinstance(label, ast.Number):
                    wildcard = label.unknown_mask
                arms.append(
                    (self._compile_eval(label, width, True), ~wildcard, body)
                )
        arms_t = tuple(arms)
        pof = self._pred_of

        def case(st, mems, o, mo, nba, pred):
            subject = subject_fn(st, mems, o, mo)
            remaining = pred
            for label_fn, care, body in arms_t:
                hit = remaining & pof(np.equal(
                    subject & care, label_fn(st, mems, o, mo) & care
                ))
                if hit.any():
                    if body is not None:
                        body(st, mems, o, mo, nba, hit)
                    remaining = remaining & ~hit
                    if not remaining.any():
                        return
            if default_fn is not None and remaining.any():
                default_fn(st, mems, o, mo, nba, remaining)

        return case

    # -- node assembly -------------------------------------------------------

    def _build_assign_node(self, assign):
        lvalue_width = self._lvalue_width(assign.target)
        value_fn = self._compile_expr(assign.value, lvalue_width, False)
        writer = self._compile_direct_write(assign.target)

        def run(st, mems):
            writer(st, mems, value_fn(st, mems, None, None))

        # Predicated variant for lockstep groups: the overlay-merging
        # procedural writer touches only lanes in ``pred``, then commits.
        pred_writer = self._compile_proc_write(assign.target, blocking=True)
        widths = self.widths
        lane_ix = self.lane_ix
        shift_cap = self.SHIFT_CAP

        def run_pred(st, mems, pred):
            overlay: Dict[int, np.ndarray] = {}
            mem_overlay: Dict[int, np.ndarray] = {}
            pred_writer(
                st, mems, overlay, mem_overlay, None,
                value_fn(st, mems, None, None), pred,
            )
            _commit_lane_overlays(
                st, mems, overlay, mem_overlay, None, widths, lane_ix,
                shift_cap,
            )

        self._pred_nodes.append(run_pred)
        reads = set()
        writes = set()
        self._expr_reads(assign.value, set(), reads)
        self._lvalue_effects(assign.target, True, set(), reads, writes)
        return run, reads, writes

    def _build_block_node(self, block):
        body = self._compile_stmt(block.body)
        if body is None:
            def run_empty(st, mems):
                return None

            def run_empty_pred(st, mems, pred):
                return None

            self._pred_nodes.append(run_empty_pred)
            return run_empty, set(), set()
        ones = self.ones
        widths = self.widths
        lane_ix = self.lane_ix
        shift_cap = self.SHIFT_CAP

        def run_pred(st, mems, pred):
            overlay: Dict[int, np.ndarray] = {}
            mem_overlay: Dict[int, np.ndarray] = {}
            nba: List[tuple] = []
            body(st, mems, overlay, mem_overlay, nba, pred)
            _commit_lane_overlays(
                st, mems, overlay, mem_overlay, nba, widths, lane_ix,
                shift_cap,
            )

        def run(st, mems):
            run_pred(st, mems, ones)

        self._pred_nodes.append(run_pred)
        reads = set()
        writes = set()
        # `written` ends as the names this block is *guaranteed* to fully
        # write on every execution; any other signal write is conditional
        # — a combinational latch, whose target carries state between
        # settles (nonblocking writes count as latched conservatively).
        written = set()
        self._stmt_effects(block.body, written, reads, writes)
        written_slots = {
            self.slot_of[name] for name in written if name in self.slot_of
        }
        if any(
            ps < self.n_signals and ps not in written_slots for ps in writes
        ):
            self._latched = True
        return run, reads, writes


class _SpillCompiler(_BatchCompiler):
    """Multi-word spill lowering: python-int object lanes, no width cap.

    Re-emits the exact int64 lowering over ``object``-dtype lane arrays
    whose elements are python ints, so >63-bit signals, memories, and
    constants run lane-parallel instead of falling back to the scalar
    loop.  Semantics mirror the *scalar* compiled backend (the verdict
    reference): the left-shift clamp is the scalar ``width + 64``, the
    power clamp stays at 64, and dynamic field writes are guarded at
    ``sig_width + 64`` — beyond that the scalar backends keep raw
    out-of-range bits that any bounded lane encoding would fold, so the
    guard raises :class:`BatchDivergence` and the episode replays on the
    scalar backend, exactly like the int64 guard at bit 63.

    numpy dispatches ufuncs on object arrays to the python-int dunders,
    which keeps every op exact at any width; the overrides below only
    (a) keep *values* in object arrays (constants fold to object arrays
    so ``np.where`` never re-infers an int64 dtype that would overflow
    under a wide mask), (b) coerce *predicates* to numpy bool arrays and
    *memory indices* to int64 arrays, because boolean/fancy indexing
    rejects object dtypes.
    """

    REPRESENTATION = "spill"
    LANE_DTYPE = object
    WIDTH_BUDGET = None
    #: right shifts of python ints are exact and cheap at any count;
    #: the cap only bounds pathological dynamic counts
    SHIFT_CAP = 1 << 20
    BOOL_DTYPE = object

    def _shl_clamp(self, width: int) -> int:
        # The scalar backend's clamp: exact, because a count of
        # width + 64 shifts every representable bit past the mask.
        return max(width, 1) + 64

    def _dynamic_write_limit(self, sig_width: int) -> int:
        return sig_width + 64

    @staticmethod
    def _pred_of(arr):
        return arr if arr.dtype == np.bool_ else arr.astype(bool)

    def _as_index(self, fn):
        def as_index(st, mems, o, mo, _f=fn):
            idx = _f(st, mems, o, mo)
            if isinstance(idx, np.ndarray):
                if idx.dtype == object:
                    # python-int lanes → bounded int64 indices (memory
                    # depths sit far below 2**62, so the clamp cannot
                    # alias an in-range element)
                    idx = np.minimum(idx, 1 << 62).astype(np.int64)
                return idx
            return int(idx)

        return as_index

    def _emit_const(self, value: int):
        # Constants fold to read-only object arrays: an np.where over a
        # python-int scalar would re-infer an int64 result dtype (or
        # overflow outright for >63-bit constants).
        const = np.empty(self.n_lanes, dtype=object)
        const[:] = value
        const.setflags(write=False)
        return lambda st, mems, o, mo, _v=const: _v

    def _lanes_of(self, value):
        if isinstance(value, np.ndarray) and value.shape == (self.n_lanes,):
            if value.dtype == object:
                return value
            value = value.tolist()  # native python ints: stay mask-exact
        elif isinstance(value, (np.integer, np.bool_)):
            value = int(value)
        arr = np.empty(self.n_lanes, dtype=object)
        arr[:] = value
        return arr


def _commit_lane_overlays(st, mems, overlay, mem_overlay, nba, widths,
                          lane_ix, shift_cap=_MAX_LANE_WIDTH) -> None:
    """Commit one blocking-overlay epoch (plus optional NBA list).

    The single definition of how overlays land in lane state — shared by
    node runners, sequential/initial execution, and lockstep variants,
    so commit semantics cannot silently diverge between them.
    """
    for slot, value in overlay.items():
        st[slot] = value
    for mem_slot, column in mem_overlay.items():
        mems[mem_slot] = column
    if nba:
        _commit_nba_lanes(st, mems, nba, widths, lane_ix, shift_cap)


def _commit_nba_lanes(st, mems, updates, widths, lane_ix,
                      shift_cap=_MAX_LANE_WIDTH) -> None:
    """Commit nonblocking updates lane-parallel, in append order.

    Updates are ``(is_mem, slot, lo, width, value, pred)``; ``lo`` and
    ``value`` may be per-lane arrays or python ints, and ``pred`` masks
    the lanes the write applies to.  Mirrors the scalar backend's
    ``_commit_nba`` update-for-update.  ``shift_cap`` bounds the merge
    shift count (the int64 budget, or the far larger spill cap — the
    emission-time guards already rejected anything beyond it).
    """
    for is_mem, slot, lo, width, value, pred in updates:
        if is_mem:
            column = mems[slot]
            depth = column.shape[0]
            if isinstance(lo, (int, np.integer)):
                if 0 <= lo < depth:
                    column[lo] = np.where(pred, value, column[lo])
                continue
            sel = pred & (lo >= 0) & (lo < depth)
            if sel.any():
                vals = value[sel] if isinstance(value, np.ndarray) else value
                column[lo[sel], lane_ix[sel]] = vals
            continue
        keep = st[slot]
        sig_width = widths[slot]
        sig_mask = (1 << sig_width) - 1
        if width >= sig_width and isinstance(lo, int) and lo == 0:
            # Whole-signal write (the common `reg <= expr` case): skip
            # the field-merge arithmetic entirely.
            st[slot] = np.where(pred, value & sig_mask, keep)
            continue
        value_mask = (1 << width) - 1
        at_c = np.minimum(lo, shift_cap)
        field_mask = value_mask << at_c
        merged = (keep & ~field_mask) | (
            ((value & value_mask) << at_c) & field_mask
        )
        if width >= sig_width:
            merged = np.where(np.equal(lo, 0), value & sig_mask, merged)
        st[slot] = np.where(pred, merged, keep)


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------


class BatchSimulator(Simulator):
    """Executes a :class:`BatchDesign` over ``n_lanes`` parallel lanes.

    With ``n_lanes=1`` (the default, and what the ``Simulator`` facade
    constructs for ``backend="batch"``) the scalar observable API —
    ``poke``/``poke_many``/``peek``/``state``/``mems`` — is drop-in
    compatible with the other backends (``peek`` returns ints).  With
    more lanes, pokes broadcast ints or take per-lane arrays, and
    ``peek_lanes`` exposes per-lane values; ``poke_many`` with array
    values is how wide sweeps route through the lanes.
    """

    def __init__(self, design: Design, max_settle_rounds: Optional[int] = None,
                 backend: Optional[str] = None, n_lanes: int = 1,
                 representation: Optional[str] = None):
        bd = batch_design(design, n_lanes, representation)
        if bd.representation == "bitslice":
            # A plain lane simulator cannot run bit planes; use the int64
            # image embedded in the bitslice artifact instead.
            bd = bd.base
        self.design = design
        self.bdesign = bd
        self.n_lanes = n_lanes
        dtype = bd.lane_dtype
        # np.zeros fills object arrays with python-int zeros, which is
        # exactly what the spill lowering expects lane elements to be.
        self.st: List[np.ndarray] = [
            np.zeros(n_lanes, dtype=dtype) for _ in range(bd.n_signals)
        ]
        self.mem_data: List[np.ndarray] = [
            np.zeros((depth, n_lanes), dtype=dtype) for depth in bd.mem_depths
        ]
        self._max_rounds = max_settle_rounds or (2 * bd.comb_count + 16)
        ones = bd.ones
        # Initial statements commit per statement, like the other backends.
        for body in bd.initial:
            overlay: Dict[int, np.ndarray] = {}
            mem_overlay: Dict[int, np.ndarray] = {}
            nba: List[tuple] = []
            body(self.st, self.mem_data, overlay, mem_overlay, nba, ones)
            _commit_lane_overlays(
                self.st, self.mem_data, overlay, mem_overlay, nba,
                bd.widths, bd.lane_ix, bd.shift_cap,
            )
        self.settle()

    # -- state views ---------------------------------------------------------

    def _scalarize(self, array: np.ndarray):
        return int(array[0]) if self.n_lanes == 1 else array.copy()

    @property
    def state(self):
        """Name-keyed snapshot: ints for one lane, arrays otherwise."""
        return {
            name: self._scalarize(self.st[slot])
            for name, slot in self.bdesign.slot_of.items()
        }

    @property
    def mems(self):
        """Name-keyed memory snapshot (lists of ints for one lane)."""
        if self.n_lanes == 1:
            return {
                name: [int(v) for v in self.mem_data[ms][:, 0]]
                for name, ms in self.bdesign.mem_of.items()
            }
        return {
            name: self.mem_data[ms].copy()
            for name, ms in self.bdesign.mem_of.items()
        }

    def peek(self, name: str):
        try:
            slot = self.bdesign.slot_of[name]
        except KeyError:
            raise SimulationError(f"peek of unknown signal {name!r}") from None
        return self._scalarize(self.st[slot])

    def peek_lanes(self, name: str) -> np.ndarray:
        """Per-lane values of ``name`` as a fresh lane array."""
        try:
            slot = self.bdesign.slot_of[name]
        except KeyError:
            raise SimulationError(f"peek of unknown signal {name!r}") from None
        return self.st[slot].copy()

    def peek_mem(self, name: str, index: int):
        memory = self.design.memories[name]
        slot = index - memory.base
        if slot < 0 or slot >= memory.depth:
            raise SimulationError(
                f"memory index {index} out of range for {name!r}"
            )
        return self._scalarize(self.mem_data[self.bdesign.mem_of[name]][slot])

    # -- poke hooks ----------------------------------------------------------

    def _masked(self, slot: int, value):
        mask = self.bdesign.masks[slot]
        if isinstance(value, int):
            return value & mask  # python-int mask first: may exceed int64
        if self.bdesign.lane_dtype is object:
            lanes = np.asarray(value, dtype=object)
            if lanes.ndim == 0:
                return int(lanes.item()) & mask
            if lanes.shape != (self.n_lanes,):
                raise ValueError(
                    f"per-lane poke value has shape {lanes.shape}; expected "
                    f"a scalar or shape ({self.n_lanes},) for "
                    f"{self.n_lanes} lanes"
                )
            out = np.empty(self.n_lanes, dtype=object)
            out[:] = [int(v) & mask for v in lanes]
            return out
        lanes = np.asarray(value, dtype=_I64)
        if lanes.ndim != 0 and lanes.shape != (self.n_lanes,):
            # Surface shape bugs here, with the lane contract named,
            # instead of as a broadcasting error deep inside numpy.
            raise ValueError(
                f"per-lane poke value has shape {lanes.shape}; expected a "
                f"scalar or shape ({self.n_lanes},) for {self.n_lanes} lanes"
            )
        return lanes & mask

    def _poke_pending(self, name: str, value) -> bool:
        slot = self.bdesign.slot_of.get(name)
        if slot is None:
            self.design.signal(name)  # raises the canonical error
        return bool(np.any(self.st[slot] != self._masked(slot, value)))

    def _poke_apply(self, name: str, value) -> None:
        slot = self.bdesign.slot_of[name]
        lanes = np.empty(self.n_lanes, dtype=self.bdesign.lane_dtype)
        lanes[:] = self._masked(slot, value)
        self.st[slot] = lanes

    def poke_lanes(self, name: str, values) -> None:
        """Per-lane poke (alias of :meth:`poke` with an array value)."""
        self.poke(name, values)

    def _trigger_bits(self) -> List[np.ndarray]:
        # Trigger bits normalize to int64 even for object lanes: edge
        # detection compares and boolean-combines these arrays, and the
        # resulting lane predicates must be numpy-bool (object-dtype
        # "bools" cannot drive boolean indexing in the compiled bodies).
        st = self.st
        bits = [st[s] & 1 for s in self.bdesign.trigger_slots]
        if self.bdesign.lane_dtype is object:
            bits = [b.astype(_I64) for b in bits]
        return bits

    def _trigger_snapshot(self) -> List[np.ndarray]:
        return self._trigger_bits()

    # -- settle / edges ------------------------------------------------------

    def settle(self) -> None:
        """One full-level sweep of the levelized schedule (all lanes)."""
        st = self.st
        mems = self.mem_data
        for run in self.bdesign.sched_nodes:
            run(st, mems)

    def _fire_edges(self, snapshot: List[np.ndarray]) -> None:
        seq = self.bdesign.seq
        for _ in range(self._max_rounds):
            current = self._trigger_bits()
            fired = []
            for triggers, body in seq:
                lanes = None
                for want, ti in triggers:
                    edge = (snapshot[ti] != current[ti]) & (
                        current[ti] == want
                    )
                    lanes = edge if lanes is None else (lanes | edge)
                if lanes is not None and lanes.any():
                    fired.append((body, lanes))
            if not fired:
                return
            self._run_seq_blocks(fired)
            self.settle()
            snapshot = current
        raise SimulationError(
            "edge events failed to quiesce (oscillating clock loop?)"
        )

    def _run_seq_blocks(self, fired) -> None:
        bd = self.bdesign
        st = self.st
        mems = self.mem_data
        pending: List[tuple] = []
        for body, pred in fired:
            overlay: Dict[int, np.ndarray] = {}
            mem_overlay: Dict[int, np.ndarray] = {}
            body(st, mems, overlay, mem_overlay, pending, pred)
            # Blocking writes commit with the block; nonblocking updates
            # commit once, after every triggered block ran.
            _commit_lane_overlays(
                st, mems, overlay, mem_overlay, None, bd.widths, bd.lane_ix,
                bd.shift_cap,
            )
        if pending:
            _commit_nba_lanes(
                st, mems, pending, bd.widths, bd.lane_ix, bd.shift_cap
            )


# ---------------------------------------------------------------------------
# Lockstep candidate groups: one lane per *candidate design*
# ---------------------------------------------------------------------------


def lockstep_shape_digest(design: Design) -> str:
    """Structural-compatibility key for lockstep candidate grouping.

    Two designs with equal digests share signal/memory tables (names,
    widths, signedness, directions), the same levelized schedule shape
    (node count, topological order, per-node read/write sets), the same
    sequential trigger structure, and the same initial-statement count —
    everything :func:`build_lockstep_group` needs to run them lane by
    lane under one schedule.  Node *bodies* are deliberately excluded:
    candidates that differ only in expressions (the typical near-miss
    completion) group together and diverge per lane at runtime.

    Raises :class:`~repro.sim.compile.UncompilableDesign` (or the
    narrower :class:`UnbatchableDesign`) when the design cannot carry a
    lane at all — not statically lowerable, not levelizable, or wider
    than the int64 lane budget while the representation is pinned to
    ``int64`` — which routes the candidate to the scalar backends under
    the usual fallback contract.  The digest (or the negative outcome)
    memoizes on the design object per representation pin — it is a
    plain string derived from structure alone, so unlike the closure
    caches it survives pickling to pool workers.
    """
    pin = configured_lane_representation()
    cache = getattr(design, "_lockstep_digest", None)
    if not isinstance(cache, dict):
        cache = design._lockstep_digest = {}
    cached = cache.get(pin)
    if cached is not None:
        if cached is False:
            raise UnbatchableDesign("design is not lane-parallelizable")
        return cached
    try:
        digest = _lockstep_shape_digest(design)
    except UnbatchableDesign:
        cache[pin] = False
        raise
    cache[pin] = digest
    return digest


def _group_representation(design: Design) -> str:
    """Lane representation a lockstep group of this shape runs under.

    Lockstep lanes carry *different candidate designs*, so the
    per-design bitslice census does not apply: groups run on plain
    ``int64`` lanes, or on the multi-word ``spill`` representation when
    any signal or memory is wider than the int64 budget.  Pinning the
    representation to ``int64`` (:func:`configure_lane_representation`
    or ``REPRO_SIM_LANES``) restores the historical wide-design
    fallback to the scalar loop; pinning ``spill`` forces every group
    onto object lanes.
    """
    pinned = configured_lane_representation()
    if pinned == "spill":
        return "spill"
    wide = any(
        sig.width > _MAX_LANE_WIDTH for sig in design.signals.values()
    ) or any(
        memory.width > _MAX_LANE_WIDTH
        for memory in design.memories.values()
    )
    if not wide:
        return "int64"
    if pinned == "int64":
        raise UnbatchableDesign(
            f"width exceeds the {_MAX_LANE_WIDTH}-bit int64 lane budget "
            "(lane representation pinned to int64)"
        )
    return "spill"


def _lockstep_shape_digest(design: Design) -> str:
    cd = compile_design(design)
    if not cd.levelized:
        raise UnbatchableDesign(
            "combinational region is not levelizable (scalar fallback "
            "applies)"
        )
    key = (
        _group_representation(design),
        tuple(
            (name, sig.width, bool(sig.signed), sig.direction)
            for name, sig in design.signals.items()
        ),
        tuple(
            (name, memory.width, memory.depth, memory.base)
            for name, memory in design.memories.items()
        ),
        len(cd.nodes),
        tuple(cd.topo),
        tuple(sorted(cd.readers.items())),
        tuple(sorted(cd.writers.items())),
        cd.trigger_slots,
        tuple(tuple(triggers) for triggers, _ in cd.seq),
        len(cd.initial),
    )
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def _comb_node_fingerprints(design: Design) -> List[str]:
    """Per-node AST fingerprints, aligned with ``CompiledDesign.nodes``.

    Nodes are assembled as all continuous assigns followed by all
    combinational blocks, in declaration order; the dataclass ``repr`` of
    the (elaborated, parameter-folded) AST identifies a body exactly, so
    equal fingerprints across candidates mean the compiled closures are
    interchangeable.
    """
    fps = [
        repr(("assign", assign.target, assign.value))
        for assign in design.comb_assigns
    ]
    fps.extend(repr(("block", block.body)) for block in design.comb_blocks)
    return fps


class LockstepGroup:
    """Execution plan for N structurally compatible candidate designs.

    Built by :func:`build_lockstep_group`; lane ``i`` carries
    ``designs[i]``.  Every per-node/per-block plan entry is a tuple of
    *variants* ``(lane_mask, runner...)`` with pairwise-disjoint masks
    covering all lanes — candidates sharing a body share one variant.
    """

    __slots__ = (
        "designs", "rep", "n_lanes", "comb_plan", "seq_plan",
        "initial_plan", "node_reads", "node_writes", "seq_writes",
    )

    def __init__(self) -> None:
        self.designs: List[Design] = []
        self.rep: Optional[BatchDesign] = None
        self.n_lanes = 0
        #: per node index: ((mask, plain_run, pred_run), ...)
        self.comb_plan: Tuple = ()
        #: per seq block: (triggers, ((mask, body), ...))
        self.seq_plan: Tuple = ()
        #: per initial statement: ((mask, body), ...)
        self.initial_plan: Tuple = ()
        self.node_reads: Tuple = ()
        self.node_writes: Tuple = ()
        #: per seq block: union of written pseudo-slots over all lanes
        self.seq_writes: Tuple = ()


def build_lockstep_group(designs: Sequence[Design]) -> LockstepGroup:
    """Lower N same-shape designs into one lane-per-candidate group.

    All designs must carry equal :func:`lockstep_shape_digest` values;
    violations (and any member the lane compiler cannot lower) raise
    :class:`UnbatchableDesign`, on which callers fall back to checking
    every member on the scalar backends.
    """
    designs = list(designs)
    n_lanes = len(designs)
    if n_lanes < 1:
        raise ValueError(f"a lockstep group needs >= 1 design, got {n_lanes}")
    # Full digest equality is the compatibility gate: it covers the
    # signal/memory tables (widths, signedness, directions), the node
    # read/write sets the dirty-skip settle relies on, and the trigger
    # structure — loose per-image checks would admit lookalikes (e.g. an
    # assign swapped for a latching block at the same schedule slot).
    digests = [lockstep_shape_digest(design) for design in designs]
    if len(set(digests)) > 1:
        raise UnbatchableDesign(
            "lockstep group members have mismatched schedule shapes"
        )
    # Digest equality covers the signal/memory width tables, so one
    # member's representation is the whole group's.
    representation = _group_representation(designs[0])

    node_fp_lists = [_comb_node_fingerprints(design) for design in designs]
    seq_fp_lists = [
        [repr((block.triggers, block.body)) for block in design.seq_blocks]
        for design in designs
    ]
    initial_fps = [repr(design.initial_stmts) for design in designs]
    # Candidates that are AST-identical after elaboration (whitespace or
    # comment variants — the duplicates source-level memoization cannot
    # see) share one compiled image: compile cost scales with distinct
    # structures, not with lanes.
    design_fps = [
        (
            repr(
                (
                    tuple(designs[lane].signals.items()),
                    tuple(designs[lane].memories.items()),
                )
            ),
            tuple(node_fp_lists[lane]),
            tuple(seq_fp_lists[lane]),
            initial_fps[lane],
        )
        for lane in range(n_lanes)
    ]
    shared: Dict[tuple, BatchDesign] = {}
    bds: List[BatchDesign] = []
    for lane, design in enumerate(designs):
        bd = shared.get(design_fps[lane])
        if bd is None:
            bd = batch_design(design, n_lanes, representation)
            shared[design_fps[lane]] = bd
        bds.append(bd)
    rep = bds[0]
    n_nodes = len(rep.nodes)
    for bd in bds[1:]:
        if len(bd.nodes) != n_nodes or len(bd.initial) != len(rep.initial):
            raise UnbatchableDesign(
                "lockstep group members have mismatched schedule shapes"
            )

    group = LockstepGroup()
    group.designs = designs
    group.rep = rep
    group.n_lanes = n_lanes

    def variants(fingerprints, runners_of):
        """Dedup per-lane runners by fingerprint; first contributor wins."""
        by_fp: Dict[str, tuple] = {}
        order: List[str] = []
        for lane, fp in enumerate(fingerprints):
            entry = by_fp.get(fp)
            if entry is None:
                mask = np.zeros(n_lanes, dtype=bool)
                by_fp[fp] = (mask,) + tuple(runners_of(lane))
                order.append(fp)
                entry = by_fp[fp]
            entry[0][lane] = True
        return tuple(by_fp[fp] for fp in order)

    group.comb_plan = tuple(
        variants(
            [node_fp_lists[lane][i] for lane in range(n_lanes)],
            lambda lane, _i=i: (bds[lane].nodes[_i], bds[lane].nodes_pred[_i]),
        )
        for i in range(n_nodes)
    )
    group.seq_plan = tuple(
        (
            rep.seq[j][0],
            variants(
                [seq_fp_lists[lane][j] for lane in range(n_lanes)],
                lambda lane, _j=j: (bds[lane].seq[_j][1],),
            ),
        )
        for j in range(len(rep.seq))
    )
    # Initial bodies are fingerprinted wholesale: compiled statements do
    # not map 1:1 to AST statements (no-op statements compile away), so
    # per-statement alignment is only guaranteed between candidates whose
    # whole initial region matches.
    group.initial_plan = tuple(
        variants(
            initial_fps, lambda lane, _k=k: (bds[lane].initial[_k],)
        )
        for k in range(len(rep.initial))
    )

    reads: List[set] = [set() for _ in range(n_nodes)]
    writes: List[set] = [set() for _ in range(n_nodes)]
    for ps, nodes in rep.readers.items():
        for node in nodes:
            reads[node].add(ps)
    for ps, nodes in rep.writers.items():
        for node in nodes:
            writes[node].add(ps)
    group.node_reads = tuple(frozenset(r) for r in reads)
    group.node_writes = tuple(frozenset(w) for w in writes)

    seq_writes: List[set] = [set() for _ in range(len(rep.seq))]
    analysed: set = set()
    for lane, design in enumerate(designs):
        if design_fps[lane] in analysed:
            continue
        analysed.add(design_fps[lane])
        comp = _Compiler(design)
        for j, block in enumerate(design.seq_blocks):
            block_reads: set = set()
            block_writes: set = set()
            comp._stmt_effects(block.body, set(), block_reads, block_writes)
            seq_writes[j] |= block_writes
    group.seq_writes = tuple(frozenset(w) for w in seq_writes)
    return group


class LockstepSimulator(BatchSimulator):
    """Steps a :class:`LockstepGroup` — one candidate design per lane.

    The observable API is the :class:`BatchSimulator` one (lane arrays
    from ``peek_lanes``, broadcast or per-lane pokes), plus:

    * :meth:`retire_lanes` — permanently drop lanes whose verdict is
      decided; retired lanes are excluded from every write predicate and
      edge trigger, and a fully retired group becomes (almost) free to
      step;
    * dirty-level settle — only schedule levels whose read sets
      intersect the slots written since the last settle run at all, so
      stimulus touching a narrow input cone skips the rest of the
      schedule.

    Verdict identity with checking every candidate on the scalar
    backends is enforced by ``tests/test_sim_lockstep.py``.
    """

    def __init__(self, group: LockstepGroup):
        rep = group.rep
        n_lanes = group.n_lanes
        self.group = group
        self.design = group.designs[0]
        self.bdesign = rep
        self.n_lanes = n_lanes
        self.active: np.ndarray = np.ones(n_lanes, dtype=bool)
        self._all_active = True
        self._any_active = True
        dtype = rep.lane_dtype
        self.st = [
            np.zeros(n_lanes, dtype=dtype) for _ in range(rep.n_signals)
        ]
        self.mem_data = [
            np.zeros((depth, n_lanes), dtype=dtype)
            for depth in rep.mem_depths
        ]
        self._max_rounds = 2 * rep.comb_count + 16
        #: plain-int settle accounting, read by the lockstep harness and
        #: reported into the repro.obs metrics registry once per group
        #: run (never per settle — this loop is hot)
        self.stat_settles = 0
        self.stat_nodes_run = 0
        self.stat_nodes_skipped = 0
        self._dirty = set(range(rep.n_signals + len(rep.mem_depths)))
        # Every node is forced into the first settle (constant-driven
        # nodes have empty read sets, so dirtiness alone would skip them).
        self._forced: set = set(range(len(rep.nodes)))
        # Initial statements commit per statement index; variant masks are
        # pairwise disjoint, so merged overlays preserve per-lane order.
        for stmt_variants in group.initial_plan:
            overlay: Dict[int, np.ndarray] = {}
            mem_overlay: Dict[int, np.ndarray] = {}
            nba: List[tuple] = []
            for entry in stmt_variants:
                mask, body = entry[0], entry[1]
                body(self.st, self.mem_data, overlay, mem_overlay, nba, mask)
            _commit_lane_overlays(
                self.st, self.mem_data, overlay, mem_overlay, nba,
                rep.widths, rep.lane_ix, rep.shift_cap,
            )
        self.settle()

    def retire_lanes(self, mask) -> None:
        """Permanently exclude the lanes in boolean ``mask``."""
        self.active = self.active & ~np.asarray(mask, dtype=bool)
        self._all_active = bool(self.active.all())
        self._any_active = bool(self.active.any())

    # -- dirty tracking ------------------------------------------------------

    def _poke_apply(self, name: str, value) -> None:
        super()._poke_apply(name, value)
        slot = self.bdesign.slot_of[name]
        self._dirty.add(slot)
        # Out-of-schedule write: like the scalar backend, re-run the
        # slot's driver too so a poked comb-driven net is restored.
        self._forced.update(self.bdesign.writers.get(slot, ()))

    def _mark_written(self, pseudo_slots) -> None:
        self._dirty |= pseudo_slots
        writers = self.bdesign.writers
        for ps in pseudo_slots:
            self._forced.update(writers.get(ps, ()))

    # -- settle / edges ------------------------------------------------------

    def settle(self) -> None:
        """Dirty-level sweep: skip schedule levels no write can reach."""
        dirty = self._dirty
        forced = self._forced
        if not dirty and not forced:
            return
        st = self.st
        mems = self.mem_data
        active = self.active
        all_active = self._all_active
        group = self.group
        node_reads = group.node_reads
        node_writes = group.node_writes
        comb_plan = group.comb_plan
        nodes_run = 0
        for node in self.bdesign.topo:
            if node not in forced and dirty.isdisjoint(node_reads[node]):
                continue
            nodes_run += 1
            node_variants = comb_plan[node]
            if len(node_variants) == 1:
                # One body covers every lane: take the unpredicated
                # full-sweep runner unless retirement narrowed the lanes.
                _, plain, pred_run = node_variants[0]
                if all_active:
                    plain(st, mems)
                elif self._any_active:
                    pred_run(st, mems, active)
            else:
                for mask, _, pred_run in node_variants:
                    pred = mask & active
                    if pred.any():
                        pred_run(st, mems, pred)
            dirty |= node_writes[node]
        self.stat_settles += 1
        self.stat_nodes_run += nodes_run
        self.stat_nodes_skipped += len(self.bdesign.topo) - nodes_run
        self._dirty = set()
        self._forced = set()

    def _fire_edges(self, snapshot: List[np.ndarray]) -> None:
        if not self._any_active:
            return  # every candidate is decided; nothing left to observe
        group = self.group
        for _ in range(self._max_rounds):
            current = self._trigger_bits()
            fired: List[tuple] = []
            fired_writes: set = set()
            for j, (triggers, block_variants) in enumerate(group.seq_plan):
                lanes = None
                for want, ti in triggers:
                    edge = (snapshot[ti] != current[ti]) & (
                        current[ti] == want
                    )
                    lanes = edge if lanes is None else (lanes | edge)
                if lanes is None:
                    continue
                lanes = lanes & self.active
                if not lanes.any():
                    continue
                for mask, body in block_variants:
                    pred = lanes & mask
                    if pred.any():
                        fired.append((body, pred))
                fired_writes |= group.seq_writes[j]
            if not fired:
                return
            self._run_seq_blocks(fired)
            self._mark_written(fired_writes)
            self.settle()
            snapshot = current
        raise SimulationError(
            "edge events failed to quiesce (oscillating clock loop?)"
        )
