"""Expression evaluation with Verilog width-context semantics.

Evaluation is two-pass per expression, following the IEEE 1364 sizing
rules for the supported subset:

1. :func:`self_width` computes the self-determined width of an expression.
2. :func:`eval_expr` evaluates under a *context width* — the max of the
   expression's self-determined width and the width imposed by its
   surroundings (e.g. the LHS of an assignment).  Context-determined
   operands (arithmetic, bitwise, ternary branches) inherit that context;
   self-determined positions (shift amounts, concat parts, indices) do not.

This gets the cases that matter for RTL right: ``{cout, sum} = a + b``
captures the carry, ``count + 1`` wraps at the register width, and
comparisons are performed at the widest operand width.

Signedness: comparisons and right shifts are signed only when *every*
context-determined operand is signed (via declaration or ``$signed``),
matching the Verilog rule.  Division by zero and modulo by zero yield 0
(two-state stand-in for X).
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import SimulationError
from repro.verilog import ast
from repro.sim.values import (
    mask,
    reduce_and,
    reduce_or,
    reduce_xor,
    to_signed,
)


class Scope(Protocol):
    """Name-resolution interface the evaluator needs."""

    def read(self, name: str) -> int: ...

    def width_of(self, name: str) -> int: ...

    def is_signed(self, name: str) -> bool: ...

    def read_mem(self, name: str, index: int) -> int: ...

    def mem_width(self, name: str) -> int: ...

    def is_mem(self, name: str) -> bool: ...


_COMPARISONS = frozenset(["==", "!=", "===", "!==", "<", "<=", ">", ">="])
_LOGICAL = frozenset(["&&", "||"])
_SHIFTS = frozenset(["<<", ">>", "<<<", ">>>"])


def self_width(expr: ast.Expr, scope: Scope) -> int:
    """Self-determined width of ``expr`` per the Verilog sizing rules."""
    if isinstance(expr, ast.Number):
        return expr.width if expr.width is not None else 32
    if isinstance(expr, ast.StringLiteral):
        return max(8 * len(expr.value), 8)
    if isinstance(expr, ast.Identifier):
        if scope.is_mem(expr.name):
            raise SimulationError(
                f"memory {expr.name!r} used without an index"
            )
        return scope.width_of(expr.name)
    if isinstance(expr, ast.Unary):
        if expr.op in ("!", "&", "|", "^", "~&", "~|", "~^"):
            return 1
        return self_width(expr.operand, scope)
    if isinstance(expr, ast.Binary):
        if expr.op in _COMPARISONS or expr.op in _LOGICAL:
            return 1
        if expr.op in _SHIFTS or expr.op == "**":
            return self_width(expr.lhs, scope)
        return max(self_width(expr.lhs, scope), self_width(expr.rhs, scope))
    if isinstance(expr, ast.Ternary):
        return max(self_width(expr.then, scope), self_width(expr.other, scope))
    if isinstance(expr, ast.Concat):
        return sum(self_width(p, scope) for p in expr.parts)
    if isinstance(expr, ast.Repeat):
        count = eval_const_int(expr.count, scope)
        return count * self_width(expr.inner, scope)
    if isinstance(expr, ast.Index):
        name = _base_name(expr.base)
        if scope.is_mem(name):
            return scope.mem_width(name)
        return 1
    if isinstance(expr, ast.PartSelect):
        msb = eval_const_int(expr.msb, scope)
        lsb = eval_const_int(expr.lsb, scope)
        return abs(msb - lsb) + 1
    if isinstance(expr, ast.IndexedPartSelect):
        return eval_const_int(expr.width, scope)
    if isinstance(expr, ast.SystemCall):
        if expr.name in ("$signed", "$unsigned") and expr.args:
            return self_width(expr.args[0], scope)
        return 32
    raise SimulationError(f"cannot size expression {type(expr).__name__}")


def is_signed_expr(expr: ast.Expr, scope: Scope) -> bool:
    """Whether ``expr`` is signed under Verilog's propagation rules."""
    if isinstance(expr, ast.Number):
        return expr.signed
    if isinstance(expr, ast.Identifier):
        return scope.is_signed(expr.name)
    if isinstance(expr, ast.Unary):
        if expr.op in ("+", "-", "~"):
            return is_signed_expr(expr.operand, scope)
        return False
    if isinstance(expr, ast.Binary):
        if expr.op in _COMPARISONS or expr.op in _LOGICAL:
            return False
        if expr.op in _SHIFTS:
            return is_signed_expr(expr.lhs, scope)
        return is_signed_expr(expr.lhs, scope) and is_signed_expr(expr.rhs, scope)
    if isinstance(expr, ast.Ternary):
        return is_signed_expr(expr.then, scope) and is_signed_expr(expr.other, scope)
    if isinstance(expr, ast.SystemCall):
        return expr.name == "$signed"
    # Concats, repeats and selects are always unsigned.
    return False


def _base_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Identifier):
        return expr.name
    raise SimulationError("only simple identifiers may be indexed/selected")


def eval_expr(expr: ast.Expr, scope: Scope, context_width: int = 0) -> int:
    """Evaluate ``expr`` to a masked unsigned int.

    ``context_width`` is the width imposed by the surrounding context (0
    means purely self-determined).  The effective evaluation width is
    ``max(context_width, self_width(expr))``.
    """
    width = max(context_width, self_width(expr, scope))
    return _eval(expr, scope, width)


def _operand(expr: ast.Expr, scope: Scope, width: int) -> int:
    """Evaluate a context-determined operand at ``width``, sign-extending
    signed operands up to the context width."""
    own = self_width(expr, scope)
    value = _eval(expr, scope, max(own, width))
    if width > own and is_signed_expr(expr, scope):
        value = mask(to_signed(value, own), width)
    elif width > own:
        value = mask(value, width)
    return value


def _eval(expr: ast.Expr, scope: Scope, width: int) -> int:
    if isinstance(expr, ast.Number):
        return mask(expr.value, max(width, 1))
    if isinstance(expr, ast.StringLiteral):
        value = 0
        for ch in expr.value.encode("utf-8", "replace"):
            value = (value << 8) | ch
        return mask(value, max(width, 8))
    if isinstance(expr, ast.Identifier):
        return mask(scope.read(expr.name), scope.width_of(expr.name))
    if isinstance(expr, ast.Unary):
        return _eval_unary(expr, scope, width)
    if isinstance(expr, ast.Binary):
        return _eval_binary(expr, scope, width)
    if isinstance(expr, ast.Ternary):
        cond = eval_expr(expr.cond, scope)
        branch = expr.then if cond != 0 else expr.other
        return _operand(branch, scope, width)
    if isinstance(expr, ast.Concat):
        out = 0
        for part in expr.parts:
            part_width = self_width(part, scope)
            out = (out << part_width) | _eval(part, scope, part_width)
        return mask(out, max(width, 1))
    if isinstance(expr, ast.Repeat):
        times = eval_const_int(expr.count, scope)
        inner_width = self_width(expr.inner, scope)
        inner = _eval(expr.inner, scope, inner_width)
        out = 0
        for _ in range(times):
            out = (out << inner_width) | inner
        return mask(out, max(width, 1))
    if isinstance(expr, ast.Index):
        return _eval_index(expr, scope)
    if isinstance(expr, ast.PartSelect):
        return _eval_part_select(expr, scope)
    if isinstance(expr, ast.IndexedPartSelect):
        return _eval_indexed_part_select(expr, scope)
    if isinstance(expr, ast.SystemCall):
        return _eval_system_call(expr, scope, width)
    raise SimulationError(f"cannot evaluate {type(expr).__name__}")


def _eval_unary(expr: ast.Unary, scope: Scope, width: int) -> int:
    op = expr.op
    if op in ("&", "~&", "|", "~|", "^", "~^"):
        operand_width = self_width(expr.operand, scope)
        value = _eval(expr.operand, scope, operand_width)
        if op in ("&", "~&"):
            out = reduce_and(value, operand_width)
        elif op in ("|", "~|"):
            out = reduce_or(value, operand_width)
        else:
            out = reduce_xor(value, operand_width)
        if op.startswith("~"):
            out ^= 1
        return out
    if op == "!":
        return 0 if eval_expr(expr.operand, scope) != 0 else 1
    value = _operand(expr.operand, scope, width)
    if op == "~":
        return mask(~value, width)
    if op == "-":
        return mask(-value, width)
    if op == "+":
        return value
    raise SimulationError(f"unsupported unary operator {op!r}")


def _eval_binary(expr: ast.Binary, scope: Scope, width: int) -> int:
    op = expr.op
    if op in _LOGICAL:
        lhs = eval_expr(expr.lhs, scope) != 0
        if op == "&&":
            return 1 if (lhs and eval_expr(expr.rhs, scope) != 0) else 0
        return 1 if (lhs or eval_expr(expr.rhs, scope) != 0) else 0
    if op in _COMPARISONS:
        cmp_width = max(
            self_width(expr.lhs, scope), self_width(expr.rhs, scope)
        )
        signed = is_signed_expr(expr.lhs, scope) and is_signed_expr(
            expr.rhs, scope
        )
        lhs = _operand(expr.lhs, scope, cmp_width)
        rhs = _operand(expr.rhs, scope, cmp_width)
        if signed:
            lhs = to_signed(lhs, cmp_width)
            rhs = to_signed(rhs, cmp_width)
        result = {
            "==": lhs == rhs,
            "===": lhs == rhs,
            "!=": lhs != rhs,
            "!==": lhs != rhs,
            "<": lhs < rhs,
            "<=": lhs <= rhs,
            ">": lhs > rhs,
            ">=": lhs >= rhs,
        }[op]
        return 1 if result else 0
    if op in _SHIFTS:
        lhs = _operand(expr.lhs, scope, width)
        amount = eval_expr(expr.rhs, scope)
        if amount >= max(width, 1) + 64:
            amount = max(width, 1) + 64  # avoid giant shifts
        if op == "<<" or op == "<<<":
            return mask(lhs << amount, width)
        if op == ">>>" and is_signed_expr(expr.lhs, scope):
            signed_val = to_signed(lhs, width)
            return mask(signed_val >> amount, width)
        return lhs >> amount
    if op == "**":
        base = _operand(expr.lhs, scope, width)
        exponent = eval_expr(expr.rhs, scope)
        if exponent > 64:
            exponent = 64  # clamp pathological exponents; result masks anyway
        return mask(base ** exponent, width)

    signed = is_signed_expr(expr.lhs, scope) and is_signed_expr(expr.rhs, scope)
    lhs = _operand(expr.lhs, scope, width)
    rhs = _operand(expr.rhs, scope, width)
    if op == "+":
        return mask(lhs + rhs, width)
    if op == "-":
        return mask(lhs - rhs, width)
    if op == "*":
        return mask(lhs * rhs, width)
    if op in ("/", "%"):
        if rhs == 0:
            return 0  # two-state stand-in for X
        if signed:
            slhs, srhs = to_signed(lhs, width), to_signed(rhs, width)
            quotient = abs(slhs) // abs(srhs)
            if (slhs < 0) != (srhs < 0):
                quotient = -quotient
            remainder = slhs - srhs * quotient
            return mask(quotient if op == "/" else remainder, width)
        return mask(lhs // rhs if op == "/" else lhs % rhs, width)
    if op == "&":
        return lhs & rhs
    if op == "|":
        return lhs | rhs
    if op == "^":
        return lhs ^ rhs
    if op in ("^~", "~^"):
        return mask(~(lhs ^ rhs), width)
    raise SimulationError(f"unsupported binary operator {op!r}")


def _eval_index(expr: ast.Index, scope: Scope) -> int:
    name = _base_name(expr.base)
    index = eval_expr(expr.index, scope)
    if scope.is_mem(name):
        return scope.read_mem(name, index)
    sig_width = scope.width_of(name)
    if index >= sig_width:
        return 0  # out-of-range select reads as 0 (two-state X)
    return (scope.read(name) >> index) & 1


def _eval_part_select(expr: ast.PartSelect, scope: Scope) -> int:
    name = _base_name(expr.base)
    msb = eval_const_int(expr.msb, scope)
    lsb = eval_const_int(expr.lsb, scope)
    if msb < lsb:
        msb, lsb = lsb, msb
    sel_width = msb - lsb + 1
    return mask(scope.read(name) >> lsb, sel_width)


def _eval_indexed_part_select(
    expr: ast.IndexedPartSelect, scope: Scope
) -> int:
    name = _base_name(expr.base)
    start = eval_expr(expr.start, scope)
    sel_width = eval_const_int(expr.width, scope)
    lsb = start if expr.ascending else start - sel_width + 1
    if lsb < 0:
        lsb = 0
    return mask(scope.read(name) >> lsb, sel_width)


def _eval_system_call(expr: ast.SystemCall, scope: Scope, width: int) -> int:
    name = expr.name
    if name == "$signed" or name == "$unsigned":
        if len(expr.args) != 1:
            raise SimulationError(f"{name} takes exactly one argument")
        return _operand(expr.args[0], scope, width)
    if name == "$clog2":
        if len(expr.args) != 1:
            raise SimulationError("$clog2 takes exactly one argument")
        value = eval_expr(expr.args[0], scope)
        if value <= 1:
            return 0
        return (value - 1).bit_length()
    if name in ("$time", "$stime", "$realtime"):
        return 0
    raise SimulationError(f"unsupported system function {name!r}")


class _ConstScope:
    """Scope exposing only a parameter environment (for const folding)."""

    def __init__(self, params: dict) -> None:
        self._params = params

    def read(self, name: str) -> int:
        try:
            return self._params[name]
        except KeyError:
            raise SimulationError(
                f"{name!r} is not a constant in this context"
            ) from None

    def width_of(self, name: str) -> int:
        self.read(name)
        return 32

    def is_signed(self, name: str) -> bool:
        return False

    def read_mem(self, name: str, index: int) -> int:
        raise SimulationError("memories are not constants")

    def mem_width(self, name: str) -> int:
        raise SimulationError("memories are not constants")

    def is_mem(self, name: str) -> bool:
        return False


def eval_const_int(expr: ast.Expr, scope: Scope) -> int:
    """Evaluate an expression that must be constant in ``scope``."""
    return eval_expr(expr, scope)


def eval_constant(expr: ast.Expr, params: dict) -> int:
    """Fold ``expr`` using only the parameter environment ``params``."""
    return eval_expr(expr, _ConstScope(params))
