"""Granularized GitHub scraper.

Implements the paper's workaround for the 1,000-results-per-query cap
(Sec. III-B2): queries are faceted by license and recursively bisected
over repository creation-date ranges until every leaf query returns a
complete result set.  Matching repositories are cloned and their Verilog
files extracted, recording author information for accreditation.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import GitHubAPIError
from repro.github.api import SEARCH_RESULT_CAP, SimulatedGitHubAPI
from repro.github.licenses import OPEN_SOURCE_LICENSE_KEYS
from repro.github.world import RepoFile


@dataclass
class ScrapedFile:
    """One extracted Verilog file with provenance for accreditation."""

    repo_full_name: str
    author: str
    path: str
    content: str
    license_key: Optional[str]
    created_at: datetime.date
    #: carried through for ground-truth evaluation only
    header_kind: str = "none"
    origin_id: int = -1

    @property
    def file_id(self) -> str:
        return f"{self.repo_full_name}:{self.path}"


@dataclass
class ScrapeReport:
    """Statistics from one scraping run."""

    queries_issued: int = 0
    date_splits: int = 0
    rate_limit_sleeps: int = 0
    repos_found: int = 0
    repos_cloned: int = 0
    files_seen: int = 0
    verilog_files_extracted: int = 0


class GitHubScraper:
    """Drives the simulated API exactly as the paper's framework drives
    the real one: per-license facets, date-range bisection, clone, extract."""

    def __init__(
        self,
        api: SimulatedGitHubAPI,
        licenses: Optional[Sequence[str]] = None,
        include_unlicensed: bool = False,
        start: datetime.date = datetime.date(2008, 1, 1),
        end: datetime.date = datetime.date(2024, 12, 31),
    ) -> None:
        self._api = api
        self._licenses: List[Optional[str]] = list(
            licenses if licenses is not None else OPEN_SOURCE_LICENSE_KEYS
        )
        if include_unlicensed:
            self._licenses.append(None)
        self._start = start
        self._end = end
        self.report = ScrapeReport()

    # -- search with granularization ------------------------------------

    def _search_all_pages(self, query: str) -> List[str]:
        """Fetch every visible page for a complete (uncapped) query."""
        names: List[str] = []
        page = 1
        while True:
            result = self._retrying_search(query, page)
            names.extend(result.items)
            if len(names) >= min(result.total_count, SEARCH_RESULT_CAP):
                return names
            page += 1

    def _retrying_search(self, query: str, page: int):
        while True:
            try:
                return self._api.search_repositories(query, page=page)
            except GitHubAPIError as exc:
                if exc.status != 403:
                    raise
                # Rate-limited: advance simulated time and retry.
                self.report.rate_limit_sleeps += 1
                self._api.sleep_minute()

    def _facet_query(
        self,
        license_key: Optional[str],
        lo: datetime.date,
        hi: datetime.date,
    ) -> str:
        license_part = (
            f"license:{license_key}" if license_key else "license:none"
        )
        return (
            f"language:verilog {license_part} "
            f"created:{lo.isoformat()}..{hi.isoformat()}"
        )

    def _collect_range(
        self,
        license_key: Optional[str],
        lo: datetime.date,
        hi: datetime.date,
        out: List[str],
    ) -> None:
        """Recursively bisect [lo, hi] until result sets are complete."""
        query = self._facet_query(license_key, lo, hi)
        probe = self._retrying_search(query, page=1)
        self.report.queries_issued += 1
        if probe.total_count <= SEARCH_RESULT_CAP:
            out.extend(probe.items)
            if probe.total_count > len(probe.items):
                remainder = self._search_all_pages(query)
                out.extend(remainder[len(probe.items):])
            return
        if lo >= hi:
            # Cannot split further: accept the capped results (the paper's
            # framework has the same residual limitation for single days).
            out.extend(self._search_all_pages(query))
            return
        self.report.date_splits += 1
        mid = lo + (hi - lo) / 2
        self._collect_range(license_key, lo, mid, out)
        self._collect_range(license_key, mid + datetime.timedelta(days=1), hi, out)

    def discover_repositories(self) -> List[str]:
        """All repository names matching the license facets, deduplicated."""
        names: List[str] = []
        for license_key in self._licenses:
            self._collect_range(license_key, self._start, self._end, names)
        unique = list(dict.fromkeys(names))
        self.report.repos_found = len(unique)
        return unique

    # -- clone + extraction -----------------------------------------------

    @staticmethod
    def _is_verilog(record: RepoFile) -> bool:
        return record.is_verilog

    def scrape(self) -> List[ScrapedFile]:
        """Run the full pipeline: discover, clone, extract Verilog files."""
        scraped: List[ScrapedFile] = []
        for full_name in self.discover_repositories():
            repo = self._api.clone(full_name)
            self.report.repos_cloned += 1
            for record in repo.files:
                self.report.files_seen += 1
                if not self._is_verilog(record):
                    continue
                self.report.verilog_files_extracted += 1
                scraped.append(
                    ScrapedFile(
                        repo_full_name=repo.full_name,
                        author=repo.owner,
                        path=record.path,
                        content=record.content,
                        license_key=repo.license_key,
                        created_at=repo.created_at,
                        header_kind=record.header_kind,
                        origin_id=record.origin_id,
                    )
                )
        return scraped
