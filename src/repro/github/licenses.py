"""License registry.

The paper's curation framework accepts repositories under a fixed set of
open-source licenses — both permissive and non-permissive (Sec. III-C2) —
and drops unlicensed repositories entirely because they "fall into a gray
area in which they could potentially be part of a copyrighted code-base".

Company names used for proprietary headers are fictional stand-ins for the
real vendors the paper found (Intel, Xilinx): the synthetic corpus must
exercise the same filter logic without reproducing real proprietary text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class License:
    """One repository license recognized by the simulated GitHub."""

    key: str           # the API's license qualifier value, e.g. "mit"
    name: str
    permissive: bool   # permissive vs copyleft (both are acceptable)
    osi_approved: bool


#: The paper's accepted license set (Sec. III-C2).
LICENSES: Dict[str, License] = {
    lic.key: lic
    for lic in [
        License("mit", "MIT License", True, True),
        License("apache-2.0", "Apache License 2.0", True, True),
        License("gpl-2.0", "GNU General Public License v2.0", False, True),
        License("gpl-3.0", "GNU General Public License v3.0", False, True),
        License("lgpl-2.1", "GNU Lesser General Public License v2.1", False, True),
        License("lgpl-3.0", "GNU Lesser General Public License v3.0", False, True),
        License("mpl-2.0", "Mozilla Public License 2.0", False, True),
        License("cc0-1.0", "Creative Commons Zero v1.0 Universal", True, False),
        License("cc-by-4.0", "Creative Commons Attribution 4.0", True, False),
        License("epl-2.0", "Eclipse Public License 2.0", False, True),
        License("bsd-2-clause", 'BSD 2-Clause "Simplified" License', True, True),
        License("bsd-3-clause", 'BSD 3-Clause "New" License', True, True),
    ]
}

OPEN_SOURCE_LICENSE_KEYS: List[str] = list(LICENSES.keys())
PERMISSIVE_LICENSE_KEYS: List[str] = [
    key for key, lic in LICENSES.items() if lic.permissive
]

_HEADER_TEMPLATES: Dict[str, str] = {
    "mit": (
        "// SPDX-License-Identifier: MIT\n"
        "// Copyright (c) {year} {author}\n"
        "// Permission is hereby granted, free of charge, to any person\n"
        "// obtaining a copy of this software, to deal in the Software\n"
        "// without restriction.\n"
    ),
    "apache-2.0": (
        "// SPDX-License-Identifier: Apache-2.0\n"
        "// Copyright {year} {author}\n"
        "// Licensed under the Apache License, Version 2.0 (the \"License\");\n"
        "// you may not use this file except in compliance with the License.\n"
    ),
    "gpl-2.0": (
        "// SPDX-License-Identifier: GPL-2.0-only\n"
        "// Copyright (C) {year} {author}\n"
        "// This program is free software; you can redistribute it and/or\n"
        "// modify it under the terms of the GNU General Public License v2.\n"
    ),
    "gpl-3.0": (
        "// SPDX-License-Identifier: GPL-3.0-or-later\n"
        "// Copyright (C) {year} {author}\n"
        "// This program is free software: you can redistribute it and/or\n"
        "// modify it under the terms of the GNU GPL as published by the FSF.\n"
    ),
    "lgpl-2.1": (
        "// SPDX-License-Identifier: LGPL-2.1-or-later\n"
        "// Copyright (C) {year} {author}\n"
        "// This library is free software under the GNU Lesser GPL v2.1.\n"
    ),
    "lgpl-3.0": (
        "// SPDX-License-Identifier: LGPL-3.0-or-later\n"
        "// Copyright (C) {year} {author}\n"
        "// This library is free software under the GNU Lesser GPL v3.\n"
    ),
    "mpl-2.0": (
        "// SPDX-License-Identifier: MPL-2.0\n"
        "// Copyright (c) {year} {author}\n"
        "// This Source Code Form is subject to the terms of the Mozilla\n"
        "// Public License, v. 2.0.\n"
    ),
    "cc0-1.0": (
        "// SPDX-License-Identifier: CC0-1.0\n"
        "// Written in {year} by {author}\n"
        "// To the extent possible under law, the author has dedicated this\n"
        "// work to the public domain.\n"
    ),
    "cc-by-4.0": (
        "// SPDX-License-Identifier: CC-BY-4.0\n"
        "// Copyright (c) {year} {author}\n"
        "// This work is licensed under Creative Commons Attribution 4.0.\n"
    ),
    "epl-2.0": (
        "// SPDX-License-Identifier: EPL-2.0\n"
        "// Copyright (c) {year} {author}\n"
        "// This program is made available under the Eclipse Public License 2.0.\n"
    ),
    "bsd-2-clause": (
        "// SPDX-License-Identifier: BSD-2-Clause\n"
        "// Copyright (c) {year}, {author}\n"
        "// Redistribution and use in source and binary forms are permitted.\n"
    ),
    "bsd-3-clause": (
        "// SPDX-License-Identifier: BSD-3-Clause\n"
        "// Copyright (c) {year}, {author}\n"
        "// Redistribution and use in source and binary forms, with or\n"
        "// without modification, are permitted.\n"
    ),
}

#: Fictional silicon vendors used for proprietary file headers.
PROPRIETARY_COMPANIES = [
    "Quartzline Semiconductor",
    "Veridian Microsystems",
    "Apex Silicon Works",
    "NorthGate FPGA Corp",
    "Helix Integrated Devices",
    "Cobalt Logic Inc.",
]

#: Header templates that must trip the file-level copyright filter.  They
#: combine the keyword families the paper lists: "proprietary",
#: "confidential", "all rights reserved".
PROPRIETARY_HEADER_TEMPLATES = [
    (
        "// Copyright (c) {year} {company}. All rights reserved.\n"
        "// This file contains PROPRIETARY and CONFIDENTIAL information of\n"
        "// {company} and may not be disclosed or reproduced without the\n"
        "// express written consent of {company}.\n"
    ),
    (
        "/*\n"
        " * {company} CONFIDENTIAL\n"
        " * Copyright {year} {company}\n"
        " * All Rights Reserved.\n"
        " * NOTICE: All information contained herein is, and remains the\n"
        " * property of {company}. Unauthorized copying of this file is\n"
        " * strictly prohibited.\n"
        " */\n"
    ),
    (
        "// (c) {year} {company}. This design is proprietary to {company}.\n"
        "// Do not distribute. License key: {key}\n"
    ),
]


def license_header(key: str, author: str, year: int) -> str:
    """Render the comment header for an open-source license."""
    template = _HEADER_TEMPLATES.get(key)
    if template is None:
        raise KeyError(f"no header template for license {key!r}")
    return template.format(author=author, year=year)


def proprietary_header(
    template_index: int, company: str, year: int, key: Optional[str] = None
) -> str:
    """Render a proprietary/confidential header (trips the filter)."""
    template = PROPRIETARY_HEADER_TEMPLATES[
        template_index % len(PROPRIETARY_HEADER_TEMPLATES)
    ]
    return template.format(company=company, year=year, key=key or "REDACTED")
