"""Deterministic generator for a synthetic GitHub repository population.

The generated world is calibrated so the curation pipeline reproduces the
paper's funnel *ratios* (Sec. IV-A) at a configurable scale:

* roughly half the Verilog files live in repos with an accepted OSS
  license (paper: 608,180 of 1.3M ≈ 47%);
* within licensed repos, most file mass is copies of popular cores, so
  MinHash/LSH de-duplication removes about 62.5% of licensed files;
* a small fraction of files inside nominally open-source repos carry
  vendored proprietary/confidential headers (paper: ~1% of the original
  corpus; >2k found in the deduplicated set) — these are what the
  file-level copyright filter must catch;
* a few files are syntactically corrupted (caught by the syntax check);
* file lengths are heavy-tailed, including one scaled "mega netlist"
  outlier (the paper found a 90M-character file).

Ground truth (header kind, duplicate origin) is recorded on every file so
tests can measure filter precision/recall — the curation pipeline itself
never reads these fields.
"""

from __future__ import annotations

import dataclasses
import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.github.licenses import (
    OPEN_SOURCE_LICENSE_KEYS,
    PROPRIETARY_COMPANIES,
    license_header,
    proprietary_header,
)
from repro.utils.rng import DeterministicRNG
from repro.vgen import generate as generate_module

_OWNERS = [
    "hdl-hub", "fpga-forge", "rtl-works", "siliconsmith", "bitstream-labs",
    "opencores-mirror", "chipcraft", "verilog-vault", "logic-foundry",
    "asic-atelier", "hw-junkie", "meadow-eda", "soc-sandbox", "gate-garden",
]

_REPO_NOUNS = [
    "riscv-core", "uart-ip", "fifo-lib", "alu-collection", "fpga-primitives",
    "hdl-snippets", "soc-blocks", "verilog-examples", "dsp-kit", "crypto-cores",
    "memory-ctrl", "timer-ip", "gpio-bank", "spi-master", "i2c-slave",
    "video-pipeline", "axi-fabric", "debug-probe", "pll-models", "cdc-lib",
]

_NOISE_FILES: List[Tuple[str, str]] = [
    ("README.md", "# {repo}\n\nOpen hardware modules.\n"),
    ("Makefile", "all:\n\tiverilog -o sim tb.v src/*.v\n"),
    (".gitignore", "*.vcd\n*.out\nbuild/\n"),
    ("docs/notes.txt", "Design notes for {repo}.\n"),
    ("scripts/run.sh", "#!/bin/sh\nexec iverilog src/*.v\n"),
    ("tb/waves.cfg", "[signals]\nclk rst\n"),
]


@dataclass
class RepoFile:
    """One file in a synthetic repository, with generation ground truth."""

    path: str
    content: str
    #: 'license' (repo's OSS header), 'plain' (author comment only),
    #: 'none' (no header), or 'proprietary' (vendored copyrighted file).
    header_kind: str = "none"
    #: Identifier of the unique underlying module; files sharing an
    #: origin_id are (near-)duplicates of each other.
    origin_id: int = -1
    #: 'fresh' for first publications, 'copy' for cross-repo copies.
    origin: str = "fresh"
    family: str = ""
    corrupted: bool = False

    @property
    def is_verilog(self) -> bool:
        return self.path.endswith(".v") or self.path.endswith(".vh")


@dataclass
class Repository:
    """One synthetic repository."""

    full_name: str
    owner: str
    created_at: datetime.date
    license_key: Optional[str]
    files: List[RepoFile] = field(default_factory=list)
    stars: int = 0

    @property
    def verilog_files(self) -> List[RepoFile]:
        return [f for f in self.files if f.is_verilog]


@dataclass
class WorldConfig:
    """Knobs for the world generator (defaults target the paper's ratios)."""

    n_repos: int = 400
    seed: int = 20250612
    #: fraction of repos carrying an accepted OSS license
    licensed_repo_fraction: float = 0.47
    #: mean Verilog files per repo (heavy-tailed around this)
    mean_verilog_files: float = 26.0
    #: probability a new file is a copy of an already-published file
    duplicate_rate: float = 0.625
    #: probability a copy receives a small perturbation (fork comment etc.)
    perturb_rate: float = 0.35
    #: probability a file in a *licensed* repo is vendored proprietary code
    proprietary_rate: float = 0.02
    #: probability a fresh file is syntactically corrupted
    corruption_rate: float = 0.03
    #: include one scaled mega-netlist outlier file
    include_mega_file: bool = True
    mega_file_modules: int = 220
    date_start: datetime.date = datetime.date(2008, 4, 1)
    date_end: datetime.date = datetime.date(2024, 12, 31)


@dataclass
class GitHubWorld:
    """The full synthetic repository population."""

    config: WorldConfig
    repos: List[Repository] = field(default_factory=list)

    @property
    def total_verilog_files(self) -> int:
        return sum(len(r.verilog_files) for r in self.repos)

    @property
    def licensed_verilog_files(self) -> int:
        return sum(
            len(r.verilog_files) for r in self.repos if r.license_key is not None
        )

    def repo(self, full_name: str) -> Optional[Repository]:
        for repo in self.repos:
            if repo.full_name == full_name:
                return repo
        return None

    def proprietary_files(self) -> List[RepoFile]:
        """Ground truth: every vendored proprietary Verilog file."""
        return [
            f
            for repo in self.repos
            for f in repo.verilog_files
            if f.header_kind == "proprietary"
        ]


def _random_date(
    rng: DeterministicRNG, start: datetime.date, end: datetime.date
) -> datetime.date:
    """Creation date skewed toward recent years (GitHub growth)."""
    span = (end - start).days
    # Take the max of two uniforms: linearly increasing density.
    offset = max(rng.randint(0, span), rng.randint(0, span))
    return start + datetime.timedelta(days=offset)


def _corrupt(source: str, rng: DeterministicRNG) -> str:
    """Introduce a syntax error of a randomly chosen kind."""
    kind = rng.choice(["drop_endmodule", "drop_semicolon", "unbalance", "typo"])
    if kind == "drop_endmodule" and "endmodule" in source:
        return source.replace("endmodule", "", 1)
    if kind == "drop_semicolon" and ";" in source:
        idx = source.index(";", len(source) // 3)
        if idx >= 0:
            return source[:idx] + source[idx + 1:]
    if kind == "unbalance" and "(" in source:
        return source.replace("(", "", 1)
    return source.replace("module", "modul", 1)


def _perturb_copy(content: str, repo_name: str, rng: DeterministicRNG) -> str:
    """Small fork-style edit that keeps Jaccard similarity above 0.85."""
    choice = rng.choice(["fork_note", "trailing_note", "blank_lines"])
    if choice == "fork_note":
        return f"// vendored into {repo_name}\n" + content
    if choice == "trailing_note":
        return content + f"\n// local copy, do not edit ({rng.randint(1, 99)})\n"
    return content.replace("\n\n", "\n", 1)


class _FilePool:
    """Published-file pool implementing popularity-weighted copying."""

    def __init__(self, rng: DeterministicRNG) -> None:
        self._rng = rng
        self._published: List[RepoFile] = []
        self._next_origin = 0

    def fresh(self, config: WorldConfig) -> RepoFile:
        # Real Verilog files frequently hold several modules; multi-module
        # files also keep the fresh-file population textually diverse, so
        # only genuine cross-repo copies trip the 0.85-Jaccard dedup.
        n_modules = self._rng.weighted_choice({1: 0.55, 2: 0.3, 3: 0.15})
        parts = [
            generate_module(self._rng.fork("module", self._next_origin, j))
            for j in range(n_modules)
        ]
        module = parts[0]
        corrupted = self._rng.maybe(config.corruption_rate)
        content = "\n".join(
            dict.fromkeys(p.source for p in parts)  # drop exact repeats
        )
        if corrupted:
            content = _corrupt(content, self._rng)
        record = RepoFile(
            path=f"src/{module.name}.v",
            content=content,
            origin_id=self._next_origin,
            origin="fresh",
            family=module.family,
            corrupted=corrupted,
        )
        self._next_origin += 1
        # Keep a pristine copy in the pool: the caller mutates its instance
        # (license/proprietary headers), and later cross-repo copies must
        # start from the unheadered original.
        self._published.append(dataclasses.replace(record))
        return record

    def copy(self, repo_name: str, config: WorldConfig) -> Optional[RepoFile]:
        if not self._published:
            return None
        # Earlier publications are more popular (min of two draws).
        idx = min(
            self._rng.randint(0, len(self._published) - 1),
            self._rng.randint(0, len(self._published) - 1),
        )
        origin = self._published[idx]
        content = origin.content
        if self._rng.maybe(config.perturb_rate):
            content = _perturb_copy(content, repo_name, self._rng)
        return RepoFile(
            path=origin.path,
            content=content,
            origin_id=origin.origin_id,
            origin="copy",
            family=origin.family,
            corrupted=origin.corrupted,
        )


_IDENT_RE_FOR_BRANDING = None  # initialized lazily below


def _brand_identifiers(content: str, prefix: str) -> str:
    """Prefix user identifiers with a vendor namespace (``qlz_count``).

    Real vendored IP ships with company-namespaced identifiers; branding
    makes the proprietary files *textually distinctive even after comment
    stripping*, which is what lets the copyright benchmark separate models
    that trained on them from models that merely saw the same design
    idioms.
    """
    import re

    from repro.verilog.tokens import KEYWORDS

    global _IDENT_RE_FOR_BRANDING
    if _IDENT_RE_FOR_BRANDING is None:
        # The lookbehind keeps based-literal bodies intact: the "d0" in
        # 8'd0 is not an identifier.
        _IDENT_RE_FOR_BRANDING = re.compile(
            r"(?<!')\b[A-Za-z_][A-Za-z0-9_]*\b"
        )

    def rename(match: "re.Match") -> str:
        word = match.group(0)
        if word in KEYWORDS or word.startswith(prefix):
            return word
        return prefix + word

    return _IDENT_RE_FOR_BRANDING.sub(rename, content)


_COMPANY_PREFIXES = {
    "Quartzline Semiconductor": "qlz_",
    "Veridian Microsystems": "vmx_",
    "Apex Silicon Works": "apx_",
    "NorthGate FPGA Corp": "ngf_",
    "Helix Integrated Devices": "hxd_",
    "Cobalt Logic Inc.": "cbl_",
}


def _make_proprietary(
    record: RepoFile, rng: DeterministicRNG, year: int
) -> RepoFile:
    company = rng.choice(PROPRIETARY_COMPANIES)
    header = proprietary_header(
        rng.randint(0, 2), company, year, key=f"{rng.randint(0, 0xFFFFFFFF):08x}"
    )
    branded = _brand_identifiers(record.content, _COMPANY_PREFIXES[company])
    record.content = header + branded
    record.header_kind = "proprietary"
    record.path = f"vendor/{record.path.rsplit('/', 1)[-1]}"
    return record


def _mega_netlist(rng: DeterministicRNG, n_modules: int) -> RepoFile:
    """A single huge generated netlist file (the Figure 2 outlier)."""
    parts = [
        "// Auto-generated flattened netlist dump. Do not edit by hand.\n"
    ]
    sub = rng.fork("mega")
    for i in range(n_modules):
        module = generate_module(sub.fork(i))
        parts.append(
            module.source.replace(
                f"module {module.name}", f"module {module.name}_gen{i}", 1
            )
        )
    return RepoFile(
        path="gen/flattened_netlist.v",
        content="\n".join(parts),
        header_kind="none",
        origin_id=-2,
        origin="fresh",
        family="netlist_dump",
    )


def generate_world(config: Optional[WorldConfig] = None) -> GitHubWorld:
    """Generate the full synthetic repository population."""
    config = config or WorldConfig()
    rng = DeterministicRNG(config.seed)
    pool = _FilePool(rng.fork("pool"))
    world = GitHubWorld(config=config)

    for index in range(config.n_repos):
        repo_rng = rng.fork("repo", index)
        owner = repo_rng.choice(_OWNERS)
        noun = repo_rng.choice(_REPO_NOUNS)
        full_name = f"{owner}/{noun}-{index}"
        created = _random_date(repo_rng, config.date_start, config.date_end)
        licensed = repo_rng.maybe(config.licensed_repo_fraction)
        license_key = (
            repo_rng.choice(OPEN_SOURCE_LICENSE_KEYS) if licensed else None
        )
        repo = Repository(
            full_name=full_name,
            owner=owner,
            created_at=created,
            license_key=license_key,
            stars=repo_rng.lognormal_int(8, 1.6, lo=0, hi=30000),
        )

        n_verilog = repo_rng.lognormal_int(
            config.mean_verilog_files * 0.55, 0.9, lo=1, hi=600
        )
        for file_index in range(n_verilog):
            if repo_rng.maybe(config.duplicate_rate):
                record = pool.copy(full_name, config)
                if record is None:
                    record = pool.fresh(config)
            else:
                record = pool.fresh(config)
            # Vendored proprietary code appears inside licensed repos: that
            # is exactly the hazard the paper's file-level filter targets.
            if license_key is not None and repo_rng.maybe(config.proprietary_rate):
                record = _make_proprietary(record, repo_rng, created.year)
            elif license_key is not None:
                record.content = (
                    license_header(license_key, owner, created.year)
                    + record.content
                )
                record.header_kind = "license"
            elif repo_rng.maybe(0.3):
                record.content = (
                    f"// {noun} - written by {owner}\n" + record.content
                )
                record.header_kind = "plain"
            # Avoid path collisions within a repo.
            record.path = record.path.replace(
                ".v", f"_{file_index}.v" if file_index else ".v"
            )
            repo.files.append(record)

        for noise_path, noise_template in _NOISE_FILES:
            if repo_rng.maybe(0.6):
                repo.files.append(
                    RepoFile(
                        path=noise_path,
                        content=noise_template.format(repo=full_name),
                        header_kind="none",
                        origin_id=-1,
                        origin="noise",
                    )
                )
        world.repos.append(repo)

    if config.include_mega_file and world.repos:
        host = rng.choice([r for r in world.repos if r.license_key is not None]
                          or world.repos)
        mega = _mega_netlist(rng, config.mega_file_modules)
        if host.license_key is not None:
            mega.content = (
                license_header(host.license_key, host.owner, host.created_at.year)
                + mega.content
            )
            mega.header_kind = "license"
        host.files.append(mega)
    return world
