"""Synthetic GitHub substrate.

The paper's curation framework scrapes GitHub through its search API,
working around the API's 1,000-results-per-query cap by granularizing
queries over repository *creation-date ranges* and *license facets*
(Sec. III-B2).  This package reproduces that environment offline:

* :mod:`repro.github.licenses` — the license registry (the paper's set of
  permissive + non-permissive OSS licenses, plus "no license");
* :mod:`repro.github.world` — a deterministic generator for a population
  of repositories with creation dates, licenses, Verilog and non-Verilog
  files, heavy cross-repo duplication, vendored proprietary files, and a
  sprinkling of syntactically broken files;
* :mod:`repro.github.api` — a simulated search/clone API enforcing the
  1k cap, pagination, and a search rate limit;
* :mod:`repro.github.scraper` — the granularized scraper the curation
  pipeline drives (date-range bisection + license facets + cloning).
"""

from repro.github.licenses import (
    LICENSES,
    License,
    OPEN_SOURCE_LICENSE_KEYS,
    PERMISSIVE_LICENSE_KEYS,
    license_header,
)
from repro.github.world import (
    GitHubWorld,
    Repository,
    RepoFile,
    WorldConfig,
    generate_world,
)
from repro.github.api import SearchResult, SimulatedGitHubAPI
from repro.github.scraper import GitHubScraper, ScrapedFile, ScrapeReport

__all__ = [
    "License",
    "LICENSES",
    "OPEN_SOURCE_LICENSE_KEYS",
    "PERMISSIVE_LICENSE_KEYS",
    "license_header",
    "GitHubWorld",
    "Repository",
    "RepoFile",
    "WorldConfig",
    "generate_world",
    "SimulatedGitHubAPI",
    "SearchResult",
    "GitHubScraper",
    "ScrapedFile",
    "ScrapeReport",
]
