"""Simulated GitHub search/clone API.

Reproduces the three API behaviours the paper's framework must engineer
around (Sec. III-B):

* the search endpoint returns at most **1,000 results per query** (the
  non-enterprise cap) — queries matching more repositories are truncated
  and flagged ``incomplete``, so callers must granularize;
* search supports the qualifiers the scraper uses: ``language:``,
  ``license:``, and ``created:YYYY-MM-DD..YYYY-MM-DD`` ranges;
* searches are rate-limited per simulated minute; exceeding the budget
  raises :class:`~repro.errors.GitHubAPIError` with status 403, and the
  caller must advance time (sleep) before retrying.

Cloning a repository returns its file tree and costs no search quota.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import GitHubAPIError
from repro.github.world import GitHubWorld, Repository

SEARCH_RESULT_CAP = 1000
DEFAULT_SEARCHES_PER_MINUTE = 30


@dataclass
class SearchQuery:
    """Parsed form of a repository search query string."""

    language: Optional[str] = None
    license_key: Optional[str] = None
    created_from: Optional[datetime.date] = None
    created_to: Optional[datetime.date] = None
    has_license: Optional[bool] = None

    @classmethod
    def parse(cls, query: str) -> "SearchQuery":
        parsed = cls()
        for token in query.split():
            if ":" not in token:
                raise GitHubAPIError(f"unsupported bare search term {token!r}")
            key, _, value = token.partition(":")
            if key == "language":
                parsed.language = value.lower()
            elif key == "license":
                if value == "none":
                    parsed.has_license = False
                else:
                    parsed.license_key = value.lower()
                    parsed.has_license = True
            elif key == "created":
                lo, sep, hi = value.partition("..")
                if not sep:
                    raise GitHubAPIError(
                        "created: qualifier must be a range YYYY-MM-DD..YYYY-MM-DD"
                    )
                parsed.created_from = datetime.date.fromisoformat(lo)
                parsed.created_to = datetime.date.fromisoformat(hi)
            else:
                raise GitHubAPIError(f"unsupported qualifier {key!r}")
        return parsed

    def matches(self, repo: Repository) -> bool:
        if self.language is not None and self.language != "verilog":
            return False
        if self.language == "verilog" and not repo.verilog_files:
            return False
        if self.has_license is False and repo.license_key is not None:
            return False
        if self.license_key is not None and repo.license_key != self.license_key:
            return False
        if self.created_from is not None and repo.created_at < self.created_from:
            return False
        if self.created_to is not None and repo.created_at > self.created_to:
            return False
        return True


@dataclass
class SearchResult:
    """One page of search results."""

    total_count: int
    items: List[str] = field(default_factory=list)  # repo full names
    incomplete_results: bool = False


@dataclass
class APIStats:
    """Accounting for rate-limit behaviour tests and the scrape report."""

    searches: int = 0
    clones: int = 0
    rate_limit_hits: int = 0
    minutes_elapsed: int = 0


class SimulatedGitHubAPI:
    """Search + clone API over a :class:`GitHubWorld`.

    Time is simulated: each search consumes quota within the current
    minute; :meth:`sleep_minute` advances the clock and refills quota.
    """

    def __init__(
        self,
        world: GitHubWorld,
        searches_per_minute: int = DEFAULT_SEARCHES_PER_MINUTE,
    ) -> None:
        self._world = world
        self._per_minute = searches_per_minute
        self._remaining = searches_per_minute
        self.stats = APIStats()
        # Deterministic result ordering: by creation date, then name.
        self._ordered = sorted(
            world.repos, key=lambda r: (r.created_at, r.full_name)
        )
        self._by_name: Dict[str, Repository] = {
            r.full_name: r for r in world.repos
        }

    # -- rate limiting ---------------------------------------------------

    @property
    def remaining_quota(self) -> int:
        return self._remaining

    def sleep_minute(self) -> None:
        """Advance simulated time by one minute, refilling search quota."""
        self.stats.minutes_elapsed += 1
        self._remaining = self._per_minute

    def _consume_search(self) -> None:
        if self._remaining <= 0:
            self.stats.rate_limit_hits += 1
            raise GitHubAPIError("API rate limit exceeded for search", status=403)
        self._remaining -= 1
        self.stats.searches += 1

    # -- endpoints ----------------------------------------------------------

    def search_repositories(
        self, query: str, page: int = 1, per_page: int = 100
    ) -> SearchResult:
        """Search repositories; results capped at :data:`SEARCH_RESULT_CAP`."""
        if page < 1:
            raise GitHubAPIError("page numbers start at 1")
        per_page = max(1, min(per_page, 100))
        self._consume_search()
        parsed = SearchQuery.parse(query)
        matches = [r.full_name for r in self._ordered if parsed.matches(r)]
        total = len(matches)
        visible = matches[:SEARCH_RESULT_CAP]
        start = (page - 1) * per_page
        items = visible[start:start + per_page]
        return SearchResult(
            total_count=total,
            items=items,
            incomplete_results=total > SEARCH_RESULT_CAP,
        )

    def clone(self, full_name: str) -> Repository:
        """Return the full repository (file tree included)."""
        repo = self._by_name.get(full_name)
        if repo is None:
            raise GitHubAPIError(f"repository {full_name!r} not found", status=404)
        self.stats.clones += 1
        return repo
