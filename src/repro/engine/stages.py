"""Concrete curation stages, registered for declarative composition.

Each stage wraps one of the existing curation/dedup components, so stage
semantics are exactly the seed pipeline's; what changes is the execution
shape (chunked streaming, batched signatures, pool-safe filters, fast
lexing) and the per-stage metrics.  Funnel names match the seed:
``license_filter``, ``length_cap``, ``dedup``, ``copyright_filter``,
``syntax_check``.
"""

from __future__ import annotations

import copy
from typing import Any, List, Optional, Sequence

from repro.curation.copyright_filter import CopyrightFilter
from repro.curation.license_filter import LicenseFilter
from repro.dedup.dedup import DEFAULT_DEDUP_THRESHOLD, StreamingDeduplicator
from repro.dedup.minhash import DEFAULT_NUM_PERMUTATIONS
from repro.engine.registry import register_stage
from repro.engine.stage import FilterStage, StatefulStage
from repro.verilog import check_syntax
from repro.verilog.fastlex import check_syntax_fast


def file_key(item: Any) -> Any:
    """Default dedup key: the scraped file's stable identity."""
    return item.file_id


@register_stage("license_filter")
class LicenseFilterStage(FilterStage):
    name = "license_filter"

    def __init__(
        self,
        allowed: Optional[Sequence[str]] = None,
        allow_unlicensed: bool = False,
    ) -> None:
        self._filter = LicenseFilter(
            allowed=allowed, allow_unlicensed=allow_unlicensed
        )

    def accepts(self, item: Any) -> bool:
        return self._filter.accepts(item)


@register_stage("length_cap")
class LengthCapStage(FilterStage):
    name = "length_cap"

    def __init__(self, max_chars: int = 0) -> None:
        # Any cap is legal, mirroring the seed's inline filter: zero (or
        # a negative value) simply keeps only empty (or no) files.
        self.max_chars = max_chars

    def accepts(self, item: Any) -> bool:
        return len(item.content) <= self.max_chars


@register_stage("copyright_filter")
class CopyrightFilterStage(FilterStage):
    name = "copyright_filter"

    def __init__(self, **filter_params) -> None:
        self._filter = CopyrightFilter(**filter_params)

    def accepts(self, item: Any) -> bool:
        return self._filter.is_clean(item.content)


@register_stage("syntax_check")
class SyntaxCheckStage(FilterStage):
    """Drops files the Verilog front end rejects.

    Uses the regex-accelerated lexer by default — verdict-identical to
    :func:`repro.verilog.check_syntax` by the fastlex equivalence
    contract; pass ``fast=False`` to run the reference lexer instead.
    """

    name = "syntax_check"

    def __init__(self, fast: bool = True) -> None:
        self._check = check_syntax_fast if fast else check_syntax

    def accepts(self, item: Any) -> bool:
        return self._check(item.content).ok


@register_stage("dedup")
class DedupStage(StatefulStage):
    """Streaming MinHash/LSH dedup with batched signature computation.

    The LSH index lives across chunks *and* across ingest batches, so
    incremental corpora dedup against everything already kept without
    recomputing historical signatures.  The whole dedup state is the
    stage's checkpoint payload.
    """

    name = "dedup"

    def __init__(
        self,
        threshold: float = DEFAULT_DEDUP_THRESHOLD,
        num_permutations: int = DEFAULT_NUM_PERMUTATIONS,
        seed: int = 0x5EED,
    ) -> None:
        self.threshold = threshold
        self.num_permutations = num_permutations
        self.seed = seed
        self._dedup = self._fresh()

    def _fresh(self) -> StreamingDeduplicator:
        return StreamingDeduplicator(
            threshold=self.threshold,
            num_permutations=self.num_permutations,
            seed=self.seed,
        )

    @property
    def dedup(self) -> StreamingDeduplicator:
        return self._dedup

    def reset(self) -> None:
        self._dedup = self._fresh()

    def process(self, chunk: Sequence[Any]) -> List[Any]:
        signatures = self._dedup.hasher.signatures(
            [item.content for item in chunk]
        )
        return [
            item
            for item, signature in zip(chunk, signatures)
            if self._dedup.offer_signature(file_key(item), signature)
        ]

    def state_dict(self) -> StreamingDeduplicator:
        # A deep snapshot, not the live object: checkpoint_state() holders
        # may keep it around while ingestion continues, and a restored
        # snapshot must not alias the restoring stage either.
        return copy.deepcopy(self._dedup)

    def load_state(self, state: StreamingDeduplicator) -> None:
        self._dedup = copy.deepcopy(state)
        # Adopt the snapshot's hyperparameters so the stage never claims
        # a threshold its restored index was not built with.
        self.threshold = self._dedup.threshold
        self.num_permutations = self._dedup.hasher.num_permutations
