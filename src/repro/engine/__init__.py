"""repro.engine — streaming, parallel, checkpointable stage execution.

The curation substrate: instead of the seed's serial whole-corpus loop,
items stream through a declared :class:`StageGraph` in chunks, fanning
parallel-safe stages across a process pool with an order-preserving
merge, while stateful stages (dedup) keep their state across chunks and
across incremental batches.  Progress, metrics, and stage state persist
through :class:`CheckpointStore`, so runs resume and corpora grow without
re-curating the world.

Layout:

* :mod:`repro.engine.stage` — the ``Stage`` protocol and per-stage metrics;
* :mod:`repro.engine.graph` — the chunked ``StageGraph`` runner;
* :mod:`repro.engine.executor` — serial and process-pool chunk executors;
* :mod:`repro.engine.cluster` — sharded coordinator/worker execution
  behind typed protocol messages, with fault recovery;
* :mod:`repro.engine.policy` — the one :class:`RetryPolicy` /
  :class:`Deadline` implementation every retry loop routes through,
  plus validated ``env_int``/``env_float`` parsing;
* :mod:`repro.engine.checkpoint` — atomic pickle-per-key snapshot store
  with two-generation corruption fallback;
* :mod:`repro.engine.registry` — declarative stage registration/compilation;
* :mod:`repro.engine.stages` — the concrete curation stages.
"""

from repro.engine.checkpoint import CheckpointStore
from repro.engine.cluster import (
    ClusterError,
    ClusterExecutor,
    ClusterProgress,
    StaleWorkerError,
)
from repro.engine.executor import (
    ChunkTrace,
    ParallelExecutor,
    SerialExecutor,
    StageStat,
    WorkerDiedError,
    apply_stages,
    auto_executor,
    make_executor,
)
from repro.engine.graph import DEFAULT_CHUNK_SIZE, StageGraph, iter_chunks
from repro.engine.policy import (
    ConfigError,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    env_float,
    env_int,
)
from repro.engine.registry import (
    build_stages,
    create_stage,
    register_stage,
    registered_stages,
)
from repro.engine.stage import (
    FilterStage,
    FunctionFilterStage,
    MapStage,
    Stage,
    StageMetrics,
    StatefulStage,
)
from repro.engine.stages import (
    CopyrightFilterStage,
    DedupStage,
    LengthCapStage,
    LicenseFilterStage,
    SyntaxCheckStage,
)

__all__ = [
    "CheckpointStore",
    "ChunkTrace",
    "ClusterError",
    "ClusterExecutor",
    "ClusterProgress",
    "ConfigError",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "env_float",
    "env_int",
    "ParallelExecutor",
    "SerialExecutor",
    "StageStat",
    "StaleWorkerError",
    "WorkerDiedError",
    "apply_stages",
    "auto_executor",
    "make_executor",
    "DEFAULT_CHUNK_SIZE",
    "StageGraph",
    "iter_chunks",
    "build_stages",
    "create_stage",
    "register_stage",
    "registered_stages",
    "FilterStage",
    "FunctionFilterStage",
    "MapStage",
    "Stage",
    "StageMetrics",
    "StatefulStage",
    "CopyrightFilterStage",
    "DedupStage",
    "LengthCapStage",
    "LicenseFilterStage",
    "SyntaxCheckStage",
]
