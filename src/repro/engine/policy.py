"""Unified retry, backoff, and deadline policy for the whole stack.

Before this module, every layer that survived faults did so with its own
hand-rolled loop: the process pool counted chunk attempts in a mutable
list, the cluster coordinator compared ``attempts > max_requeues`` in
one place and open-coded handshake deadlines in another, and each parsed
its ``REPRO_*`` tuning knobs ad hoc.  Three divergent implementations of
the same three decisions — *is this error worth retrying, how long do we
wait, and when do we give up* — none of them observable.

Now there is one:

* :class:`RetryPolicy` — a frozen value object answering "retry
  number ``n``, after ``exc``: yes or no, and after how long a sleep".
  Classification is type-based (:class:`~repro.errors.TransientError`
  and friends), backoff is exponential with a *deterministic* jitter
  (reproducible runs stay reproducible), and every granted retry counts
  ``policy.retries`` in :mod:`repro.obs`.
* :class:`Deadline` — a monotonic time budget created once and threaded
  through blocking waits; ``remaining()`` caps each individual wait and
  :meth:`Deadline.check` raises a typed :class:`DeadlineExceeded`
  (counting ``policy.deadline_exceeded``) instead of letting a stack of
  nested timeouts silently add up past the caller's budget.
* :func:`env_int` / :func:`env_float` — validated environment parsing
  with range checks.  A bad value raises
  :class:`~repro.errors.ConfigError` *naming the variable* at
  construction time, instead of surfacing as a bare ``ValueError``
  traceback deep inside a coordinator tick.

Consumers: :class:`~repro.engine.ParallelExecutor` broken-pool recovery,
:class:`~repro.engine.ClusterExecutor` lease/requeue and handshake
paths, and the :mod:`repro.service` job supervisor — the acceptance bar
is that none of those keep a private retry loop.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, Union

from repro import obs
from repro.errors import ConfigError, ReproError, TransientError

__all__ = [
    "ConfigError",
    "Deadline",
    "DeadlineExceeded",
    "DEFAULT_RETRYABLE",
    "RetryPolicy",
    "TransientError",
    "env_float",
    "env_int",
]


# -- validated environment parsing -------------------------------------------


def _env_number(
    name: str,
    default,
    parse: Callable,
    kind: str,
    minimum,
    maximum,
):
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = parse(raw.strip())
    except ValueError:
        raise ConfigError(
            f"{name}={raw!r} is not a valid {kind}"
        ) from None
    if minimum is not None and value < minimum:
        raise ConfigError(
            f"{name}={raw!r} is below the minimum of {minimum}"
        )
    if maximum is not None and value > maximum:
        raise ConfigError(
            f"{name}={raw!r} is above the maximum of {maximum}"
        )
    return value


def env_int(
    name: str,
    default: Optional[int],
    minimum: Optional[int] = None,
    maximum: Optional[int] = None,
) -> Optional[int]:
    """``int(os.environ[name])`` with range checks and a typed error.

    Unset or blank returns ``default``; anything unparseable or outside
    ``[minimum, maximum]`` raises :class:`~repro.errors.ConfigError`
    naming the variable and the offending value.
    """
    return _env_number(name, default, int, "integer", minimum, maximum)


def env_float(
    name: str,
    default: Optional[float],
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> Optional[float]:
    """``float(os.environ[name])`` with range checks and a typed error."""
    return _env_number(name, default, float, "number", minimum, maximum)


# -- deadlines ---------------------------------------------------------------


class DeadlineExceeded(ReproError):
    """A monotonic time budget ran out (typed, names the budget)."""

    def __init__(self, what: str, budget_s: Optional[float]) -> None:
        self.what = what
        self.budget_s = budget_s
        label = what or "operation"
        if budget_s is not None:
            super().__init__(
                f"deadline exceeded: {label} did not finish within "
                f"{budget_s:.1f}s"
            )
        else:
            super().__init__(f"deadline exceeded: {label}")


class Deadline:
    """A monotonic time budget threaded through blocking waits.

    Created once at the top of an operation and passed down, so nested
    waits (socket polls, handshake acks, retry sleeps) each take at most
    ``remaining()`` and the whole operation honors one budget instead of
    accumulating per-layer timeouts.  ``Deadline(None)`` never expires,
    so call sites need no conditional plumbing.
    """

    __slots__ = ("budget_s", "_expires_at")

    def __init__(self, seconds: Optional[float]) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError(f"deadline budget must be >= 0, got {seconds}")
        self.budget_s = seconds
        self._expires_at = (
            None if seconds is None else time.monotonic() + seconds
        )

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires (the no-budget default)."""
        return cls(None)

    def remaining(self, cap: Optional[float] = None) -> Optional[float]:
        """Seconds left (>= 0), capped at ``cap``; None means unbounded.

        The usual call shape is ``wait(deadline.remaining(tick))``: the
        wait honors both the local tick and the overall budget.
        """
        if self._expires_at is None:
            return cap
        left = max(0.0, self._expires_at - time.monotonic())
        return left if cap is None else min(left, cap)

    def expired(self) -> bool:
        return (
            self._expires_at is not None
            and time.monotonic() >= self._expires_at
        )

    def check(self, what: str = "") -> None:
        """Raise :class:`DeadlineExceeded` (and count it) when expired."""
        if self.expired():
            obs.count("policy.deadline_exceeded")
            obs.event("policy.deadline_exceeded", what=what)
            raise DeadlineExceeded(what, self.budget_s)

    def __repr__(self) -> str:
        if self._expires_at is None:
            return "Deadline(None)"
        return f"Deadline({self.budget_s}, remaining={self.remaining():.3f})"


# -- retry policy ------------------------------------------------------------

#: error types every policy treats as retryable unless overridden;
#: :class:`~repro.errors.TransientError` is the marker subsystems raise
#: (injected faults, dead workers, lost cluster connections) and the
#: stdlib connection/timeout types cover socket plumbing.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    TransientError,
    ConnectionError,
    TimeoutError,
    EOFError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """One typed answer to "should this be retried, and after how long".

    ``max_attempts`` counts *total* attempts including the first (so a
    cluster ``max_requeues=2`` maps to ``max_attempts=3``).  Backoff is
    exponential — ``base_delay_s * multiplier**(n-1)`` capped at
    ``max_delay_s`` — with a deterministic jitter derived from the
    attempt number, so retry schedules are reproducible run to run.
    ``retryable`` lists the exception types worth retrying; anything
    else fails immediately regardless of remaining budget.

    The low-level surface the executors use is :meth:`grant` (budget +
    classification + the ``policy.retries`` metric) and :meth:`sleep`;
    :meth:`call` wraps both around a callable for straight-line callers
    like the service supervisor.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")

    def is_retryable(self, exc: Optional[BaseException]) -> bool:
        """Type-based classification; ``None`` (no error) is retryable."""
        return exc is None or isinstance(exc, self.retryable)

    def grant(
        self, failures: int, exc: Optional[BaseException] = None
    ) -> bool:
        """Permit (and count) one more attempt after ``failures`` of them.

        ``failures`` is the number of attempts that have already failed.
        Returns False when the error is not retryable or the budget is
        spent; True counts ``policy.retries`` so every retry anywhere in
        the stack lands in the same metric.
        """
        if not self.is_retryable(exc):
            return False
        if failures >= self.max_attempts:
            return False
        obs.count("policy.retries")
        return True

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered.

        The jitter term is a hash of the attempt number, not a random
        draw: spread in the large, reproducible in the small.
        """
        if attempt < 1:
            attempt = 1
        delay = min(
            self.max_delay_s,
            self.base_delay_s * (self.multiplier ** (attempt - 1)),
        )
        if self.jitter and delay > 0:
            frac = ((attempt * 2654435761) % 1024) / 1024.0
            delay += delay * self.jitter * frac
        return delay

    def sleep(
        self, attempt: int, deadline: Optional[Deadline] = None
    ) -> None:
        """Sleep the backoff for ``attempt``, bounded by ``deadline``."""
        delay = self.backoff_s(attempt)
        if deadline is not None:
            delay = deadline.remaining(delay)
        if delay:
            time.sleep(delay)

    def call(
        self,
        fn: Callable,
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        describe: str = "",
    ):
        """Run ``fn()`` under this policy; the supervisor's entry point.

        Retryable failures are retried with backoff until the attempt
        budget or the ``deadline`` runs out; the final error (or a
        :class:`DeadlineExceeded`) propagates.  ``on_retry(failures,
        exc)`` fires before each granted retry — the service uses it to
        move a job through ``resumable`` between attempts.
        """
        failures = 0
        while True:
            if deadline is not None:
                deadline.check(describe)
            try:
                return fn()
            except BaseException as exc:
                failures += 1
                if not self.grant(failures, exc):
                    raise
                if on_retry is not None:
                    on_retry(failures, exc)
                self.sleep(failures, deadline)
