"""Chunk executors: serial in-process and order-preserving process-pool.

The graph hands an executor a *fused run* of parallel-safe stages plus a
stream of chunks; the executor yields, **in submission order**, one
``(out_chunk, trace)`` pair per input chunk, where ``trace`` is a
:class:`ChunkTrace`: one typed :class:`StageStat` per stage measured
where the work actually ran, plus the chunk's drained
:class:`~repro.obs.ObsBuffer` (spans and metrics recorded while the
chunk executed, wherever that was).  Order preservation is what lets the
parallel path stay byte-identical to the serial one — and is also what
makes trace merging deterministic: the coordinator folds each chunk's
buffer into the run trace in submission order, so a
:class:`ParallelExecutor` trace carries exactly the spans a serial run
would, re-parented under the dispatching phase.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.policy import RetryPolicy
from repro.errors import TransientError
from repro.testing import faults


class WorkerDiedError(TransientError):
    """A worker died and the chunk's requeue budget ran out.

    Raised by :class:`ParallelExecutor` (and the cluster coordinator)
    in place of a bare ``BrokenProcessPool`` traceback, naming the chunk
    index and the fused stage run so the failure reads as *"chunk 12 of
    [eval_generate -> eval_check] failed twice"*, with the chunk having
    been requeued once before the run gave up.
    """

    def __init__(
        self,
        chunk_index: int,
        stage: str,
        attempts: int = 1,
        detail: str = "",
    ) -> None:
        self.chunk_index = chunk_index
        self.stage = stage
        self.attempts = attempts
        self.detail = detail
        message = (
            f"worker died running chunk {chunk_index} of stage run "
            f"[{stage}] ({attempts} attempt(s))"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


@dataclass
class StageStat:
    """One stage's accounting for one chunk (or one aggregated run).

    Replaces the untyped ``(stage_name, n_in, n_out, seconds)`` tuples
    the executors used to emit.  The tuple form survives as the
    deprecated :attr:`as_tuple` property (and via iteration/indexing) so
    callers that still unpack four values keep working.
    """

    stage: str
    n_in: int
    n_out: int
    seconds: float

    @property
    def removed(self) -> int:
        return self.n_in - self.n_out

    @property
    def as_tuple(self) -> Tuple[str, int, int, float]:
        """Deprecated: the legacy stat-tuple form."""
        return (self.stage, self.n_in, self.n_out, self.seconds)

    def __iter__(self):
        # Deprecated tuple-unpacking compatibility:
        # ``name, n_in, n_out, seconds = stat`` keeps working.
        return iter(self.as_tuple)

    def __getitem__(self, index):
        return self.as_tuple[index]


@dataclass
class ChunkTrace:
    """Everything one chunk's execution reported back."""

    stats: List[StageStat] = field(default_factory=list)
    #: spans/metrics recorded while the chunk ran (None when nothing was)
    obs: Optional[obs.ObsBuffer] = None

    def __iter__(self):
        # Legacy compatibility: ``for name, n_in, n_out, s in trace``
        # iterates the per-stage stats like the old stats list did.
        return iter(self.stats)


ChunkResult = Tuple[List[Any], ChunkTrace]

#: per-worker-process cache of deserialized fused stage lists, so the
#: same stages are unpickled once per worker instead of once per chunk
_WORKER_STAGE_CACHE: Dict[bytes, List] = {}


def _apply_pickled_stages(
    stage_blob: bytes, chunk: Sequence[Any], obs_mode: str = "off"
) -> ChunkResult:
    obs.ensure_mode(obs_mode)
    # The pool-worker fault point: an armed ``exit`` here is the
    # deterministic replacement for the old poison-stage os._exit races
    # (the parent sees BrokenProcessPool and requeues under its policy).
    faults.fire("pool.chunk")
    stages = _WORKER_STAGE_CACHE.get(stage_blob)
    if stages is None:
        if len(_WORKER_STAGE_CACHE) > 8:
            _WORKER_STAGE_CACHE.clear()
        stages = pickle.loads(stage_blob)
        _WORKER_STAGE_CACHE[stage_blob] = stages
    return apply_stages(stages, chunk)


def apply_stages(stages: Sequence, chunk: Sequence[Any]) -> ChunkResult:
    """Run ``chunk`` through ``stages`` sequentially, timing each stage.

    Module-level so process pools can pickle it by reference.  All
    observability recorded while the chunk runs — the chunk/stage spans
    opened here and anything the stages themselves record — is captured
    into a fresh frame and shipped back inside the :class:`ChunkTrace`,
    which is what keeps pool-worker traces lossless.
    """
    obs.push_frame()
    try:
        out: List[Any] = list(chunk)
        stats: List[StageStat] = []
        with obs.span("engine.chunk", n_in=len(out), stages=len(stages)):
            for stage in stages:
                n_in = len(out)
                with obs.span(f"engine.stage.{stage.name}", n_in=n_in) as sp:
                    start = time.perf_counter()
                    out = stage.process(out)
                    seconds = time.perf_counter() - start
                    sp.set(n_out=len(out))
                stats.append(StageStat(stage.name, n_in, len(out), seconds))
    finally:
        buffer = obs.pop_frame()
    return out, ChunkTrace(stats=stats, obs=buffer)


class SerialExecutor:
    """Runs every chunk inline in the driving process."""

    workers = 1

    def map_chunks(
        self, stages: Sequence, chunks: Iterable[Sequence[Any]]
    ) -> Iterator[ChunkResult]:
        for chunk in chunks:
            yield apply_stages(stages, chunk)

    def close(self) -> None:
        """Nothing to release."""


class ParallelExecutor:
    """Fans chunks across a process pool with an order-preserving merge.

    A bounded window of in-flight futures keeps memory flat on long
    streams; results are yielded strictly in submission order regardless
    of completion order, so downstream stages observe the same stream the
    serial executor would produce.
    """

    #: default broken-pool recovery: one rebuild+resubmit, no backoff
    #: (the pool restart itself is the delay), then a typed failure
    DEFAULT_RETRY = RetryPolicy(
        max_attempts=2, base_delay_s=0.0, jitter=0.0
    )

    def __init__(
        self,
        workers: int = 0,
        window: int = 0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.workers = workers if workers > 0 else (os.cpu_count() or 1)
        self.window = window if window > 0 else 2 * self.workers
        self.retry = retry if retry is not None else self.DEFAULT_RETRY
        self._pool = None
        #: last fused-stage list and its pickle, so checkpointed runs
        #: (one map_chunks call per block) serialize heavy stage payloads
        #: once per run instead of once per block; holding the stage
        #: references keeps the identity comparison sound
        self._blob_stages: list = []
        self._blob: bytes = b""

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def map_chunks(
        self, stages: Sequence, chunks: Iterable[Sequence[Any]]
    ) -> Iterator[ChunkResult]:
        pool = self._ensure_pool()
        # Serialize the fused stage list once per phase (reused across
        # calls while the same stage objects are passed); workers cache
        # the deserialized stages, so per-chunk payloads are data only.
        stages = list(stages)
        if len(stages) != len(self._blob_stages) or any(
            a is not b for a, b in zip(stages, self._blob_stages)
        ):
            self._blob_stages = stages
            self._blob = pickle.dumps(stages, protocol=pickle.HIGHEST_PROTOCOL)
        stage_blob = self._blob
        # The mode travels with every chunk (cheap: one short string), so
        # workers under any pool start method — and workers forked before
        # a configure() call — record exactly what the coordinator wants.
        obs_mode = obs.mode()
        from concurrent.futures.process import BrokenProcessPool

        # Entries are mutable [future, chunk_index, chunk, attempts] so a
        # broken pool can resubmit the lost chunks in place.
        pending: deque = deque()
        iterator = iter(chunks)
        exhausted = False
        index = 0
        while True:
            while not exhausted and len(pending) < self.window:
                try:
                    chunk = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                pending.append(
                    [
                        pool.submit(
                            _apply_pickled_stages, stage_blob, chunk, obs_mode
                        ),
                        index,
                        chunk,
                        0,
                    ]
                )
                index += 1
            if not pending:
                return
            try:
                result = pending[0][0].result()
            except BrokenProcessPool:
                pool = self._requeue_pending(
                    pending, stages, stage_blob, obs_mode
                )
                continue
            pending.popleft()
            yield result

    def _requeue_pending(
        self,
        pending: deque,
        stages: Sequence,
        stage_blob: bytes,
        obs_mode: str,
    ):
        """Rebuild a broken pool and resubmit its lost chunks.

        The head chunk — the one the merge was blocked on — carries the
        attempt count; the executor's :class:`RetryPolicy` decides when
        the budget is spent (default: one requeue), at which point a
        typed :class:`WorkerDiedError` names the chunk and the stage
        run instead of a bare ``BrokenProcessPool``.
        """
        head = pending[0]
        head[3] += 1
        stage_names = " -> ".join(s.name for s in stages)
        if not self.retry.grant(head[3]):
            self._pool = None  # broken; nothing worth keeping
            raise WorkerDiedError(
                chunk_index=head[1],
                stage=stage_names,
                attempts=head[3],
                detail=(
                    f"the process pool broke {head[3]} times on this "
                    "chunk"
                ),
            )
        broken = self._pool
        self._pool = None
        if broken is not None:
            broken.shutdown(wait=False, cancel_futures=True)
        obs.count("engine.pool.requeues")
        obs.event(
            "engine.pool.requeue", chunk=head[1], stages=stage_names
        )
        self.retry.sleep(head[3])
        pool = self._ensure_pool()
        for entry in pending:
            future = entry[0]
            if future.done() and future.exception() is None:
                continue  # finished before the crash: result survives
            entry[0] = pool.submit(
                _apply_pickled_stages, stage_blob, entry[2], obs_mode
            )
        return pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._blob_stages = []
        self._blob = b""

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self):
        # Checkpoints may pickle objects holding an executor; the pool
        # and the blob cache are process-local and rebuilt on demand.
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_blob_stages"] = []
        state["_blob"] = b""
        return state


def auto_executor(workers=None):
    """Pick an executor for this machine: a pool when >1 worker helps."""
    count = workers if workers is not None else (os.cpu_count() or 1)
    if count > 1:
        return ParallelExecutor(workers=count)
    return SerialExecutor()


def make_executor(spec="auto", **kwargs):
    """Resolve an executor from a spec string (or pass an instance through).

    ``spec`` is ``"serial"``, ``"pool"`` (aliases ``"process"``,
    ``"parallel"``), ``"cluster"``, or ``"auto"``; keyword arguments feed
    the chosen constructor.  Anything already shaped like an executor
    (has ``map_chunks``) is returned unchanged, so call sites can accept
    both names and instances.
    """
    if hasattr(spec, "map_chunks"):
        return spec
    name = str(spec).strip().lower()
    if name == "serial":
        return SerialExecutor()
    if name in ("pool", "process", "parallel"):
        return ParallelExecutor(**kwargs)
    if name == "cluster":
        # Late import: the cluster package imports this module.
        from repro.engine.cluster import ClusterExecutor

        return ClusterExecutor(**kwargs)
    if name == "auto":
        return auto_executor(kwargs.get("workers"))
    raise ValueError(
        f"unknown executor spec {spec!r} "
        "(expected 'serial', 'pool', 'cluster', or 'auto')"
    )
