"""The cluster worker process: connect, handshake, lease, repeat.

:func:`cluster_worker_main` is the process entry point the coordinator
spawns (it is module-level so both fork and spawn start methods can
reach it).  A worker is a small supervised service:

* it connects to the coordinator's listener, sends :class:`~.protocol.Hello`,
  and answers every :class:`~.protocol.PlanHandshake` with a
  :class:`~.protocol.PlanAck` carrying the plan fingerprint *it*
  computed — the coordinator compares and rejects a stale build;
* a side thread sends :class:`~.protocol.Heartbeat` every
  ``heartbeat_s`` seconds, so a worker busy inside a long chunk still
  reads as alive while a wedged one goes quiet and gets its leases
  requeued;
* each :class:`~.protocol.ChunkLease` runs through
  :func:`repro.engine.apply_stages` — the same function the process
  pool uses — so the chunk's spans and metrics ship home inside the
  :class:`~repro.engine.ChunkTrace` and the coordinator's merged trace
  is as complete as a serial run's;
* on coordinator loss (EOF on the connection) or
  :class:`~.protocol.Shutdown` the worker exits cleanly, exporting its
  residual lifecycle spans to ``<obs_dir>/cluster-worker-<id>-<pid>/``
  in trace mode (``tools/trace_report.py --merge`` folds those logs
  into one report).

``fault`` is the test-only fault-injection surface — ``die_on_lease``
(hard ``os._exit`` mid-chunk), ``hang_on_lease`` (wedge: stop
heartbeating and never answer), ``backend_version`` (impersonate a
stale build at handshake).  The fault-injection suite and the CI smoke
example drive recovery through it deterministically.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from multiprocessing.connection import Client
from typing import Any, Dict, Optional

from repro import obs
from repro.testing import faults
from repro.engine.cluster.protocol import (
    ChunkLease,
    ChunkResult,
    Heartbeat,
    Hello,
    PlanAck,
    PlanHandshake,
    Requeue,
    Shutdown,
    decode,
    encode,
    plan_fingerprint,
)

#: default seconds between heartbeats (coordinator timeout is a multiple)
DEFAULT_HEARTBEAT_S = 2.0


def _export_worker_trace(worker_id: int) -> None:
    """Write residual (unshipped) worker spans for ``--merge`` reports."""
    if obs.mode() != obs.MODE_TRACE:
        return
    buffer = obs.snapshot()
    if not buffer:
        return
    from repro.obs import export

    run_dir = os.path.join(
        obs.obs_dir(), f"cluster-worker-{worker_id}-{os.getpid()}"
    )
    try:
        os.makedirs(run_dir, exist_ok=True)
        export.write_events_jsonl(
            os.path.join(run_dir, "events.jsonl"),
            buffer,
            meta={"run": f"cluster-worker-{worker_id}", "mode": obs.mode()},
        )
    except OSError:
        pass  # unwritable export root: the run itself is unaffected


def cluster_worker_main(
    address: Any,
    authkey: bytes,
    worker_id: int,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    fault: Optional[Dict[str, Any]] = None,
) -> None:
    """Run one worker until shutdown or coordinator loss."""
    fault = dict(fault or {})
    conn = Client(address, authkey=bytes(authkey))
    send_lock = threading.Lock()

    def send(message: Any) -> None:
        with send_lock:
            conn.send_bytes(encode(message))

    alive = threading.Event()
    alive.set()

    def beat() -> None:
        while alive.is_set():
            time.sleep(heartbeat_s)
            if not alive.is_set():
                return
            try:
                send(Heartbeat(worker_id=worker_id))
            except (OSError, ValueError):
                return

    send(Hello(worker_id=worker_id, pid=os.getpid()))
    threading.Thread(
        target=beat, name=f"cluster-heartbeat-{worker_id}", daemon=True
    ).start()

    plans: Dict[int, list] = {}
    backend_override = fault.get("backend_version")
    leases_seen = 0
    try:
        while True:
            try:
                message = decode(conn.recv_bytes())
            except (EOFError, OSError):
                break  # coordinator went away: nothing left to serve
            if isinstance(message, PlanHandshake):
                obs.ensure_mode(message.obs_mode)
                if message.obs_dir:
                    obs.configure(directory=message.obs_dir)
                stages = pickle.loads(message.stage_blob)
                plans[message.plan_id] = stages
                send(
                    PlanAck(
                        worker_id=worker_id,
                        plan_id=message.plan_id,
                        fingerprint=plan_fingerprint(
                            stages,
                            message.stage_blob,
                            backend_version=backend_override,
                        ),
                    )
                )
            elif isinstance(message, ChunkLease):
                leases_seen += 1
                # The REPRO_FAULTS-armable twin of the fault dict below:
                # "cluster.worker.lease:exit:N[:marker]" kills this
                # worker on its Nth lease (the once-marker confines the
                # death to a single worker of the fleet) — what the CI
                # service smoke uses to inject a worker kill from the
                # environment.
                faults.fire("cluster.worker.lease")
                if fault.get("die_on_lease") == leases_seen:
                    os._exit(1)  # injected hard death, mid-chunk
                if fault.get("hang_on_lease") == leases_seen:
                    alive.clear()  # injected wedge: heartbeats stop too
                    time.sleep(3600)
                stages = plans.get(message.plan_id)
                if stages is None:
                    send(
                        Requeue(
                            lease_id=message.lease_id,
                            reason="plan not handshaken with this worker",
                        )
                    )
                    continue
                with obs.span(
                    "cluster.worker.lease",
                    worker=worker_id,
                    chunk=message.chunk_index,
                    n_in=len(message.items),
                ):
                    out, trace = _apply(stages, message.items)
                send(
                    ChunkResult(
                        lease_id=message.lease_id,
                        chunk_index=message.chunk_index,
                        items=out,
                        trace=trace,
                    )
                )
            elif isinstance(message, Shutdown):
                break
    finally:
        alive.clear()
        _export_worker_trace(worker_id)
        try:
            conn.close()
        except OSError:
            pass


def _apply(stages: list, items: list):
    # Late import: repro.engine re-exports the cluster package, so a
    # top-level import here would be circular during package init.
    from repro.engine.executor import apply_stages

    return apply_stages(stages, items)
