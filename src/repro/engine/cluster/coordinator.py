"""The cluster coordinator: lease tracking, fault recovery, streaming.

:class:`ClusterExecutor` is a drop-in chunk executor (the same
``map_chunks`` contract as :class:`~repro.engine.SerialExecutor` and
:class:`~repro.engine.ParallelExecutor`) that shards pooled phases
across N worker *processes behind a socket*, speaking the typed
protocol of :mod:`repro.engine.cluster.protocol`.  What the extra layer
buys over the in-process pool:

* **Leases, not futures.**  Every dispatched chunk is a tracked lease;
  a worker death (connection EOF) or a heartbeat timeout requeues the
  worker's leases onto the survivors, bounded by ``max_requeues`` per
  chunk, after which the run fails with a typed
  :class:`~repro.engine.WorkerDiedError` naming the chunk and stages.
* **Fingerprint handshake.**  Each fused stage list is identified by
  :func:`~.protocol.plan_fingerprint`; a worker whose independently
  computed fingerprint disagrees (stale build, different simulator
  backend version) is rejected at handshake and the run continues on
  the honest workers (:class:`~.protocol.StaleWorkerError` only when
  none remain).
* **Shape-aware routing.**  Chunks whose items all share one
  ``(model, task, unit)`` coordinate — a lockstep group of pass@k
  candidates — are routed *sticky*: every chunk of the group lands on
  the same worker, so that worker's in-memory golden artifacts and its
  ``sim.cache`` entries stay hot.
* **Live progress.**  Results stream back in submission order while
  later chunks are still running; ``progress()`` snapshots the run and
  ``cluster.*`` counters/gauges/spans land in the ambient
  :mod:`repro.obs` trace.

Coordinator loss is survived one layer up: runs checkpoint through
:class:`~repro.engine.CheckpointStore` (see ``EvalPlan.run``), whose
saves are fsync-atomic, so killing the *coordinator* process mid-run
and rerunning with the same store resumes from the last completed
block — asserted by the fault-injection suite in
``tests/test_cluster.py``.

Multiple ``map_chunks`` generators may be live at once (a graph with
several pooled phases runs them as a lazy chain), so all connection
traffic flows through one shared pump that routes results to the run
owning each lease.
"""

from __future__ import annotations

import itertools
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.connection import Listener, wait as connection_wait
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.cluster.protocol import (
    PROTOCOL_VERSION,
    ChunkLease,
    ChunkResult,
    ClusterError,
    Heartbeat,
    Hello,
    PlanAck,
    PlanHandshake,
    Requeue,
    Shutdown,
    StaleWorkerError,
    decode,
    encode,
    plan_fingerprint,
)
from repro.engine.cluster.worker import DEFAULT_HEARTBEAT_S, cluster_worker_main
from repro.engine.executor import WorkerDiedError
from repro.engine.policy import Deadline, RetryPolicy, env_float, env_int
from repro.testing import faults

__all__ = [
    "ClusterExecutor",
    "ClusterProgress",
    "default_route_key",
]

_ENV_WORKERS = "REPRO_CLUSTER_WORKERS"
_ENV_HEARTBEAT = "REPRO_CLUSTER_HEARTBEAT_S"
_ENV_TIMEOUT = "REPRO_CLUSTER_TIMEOUT_S"
_ENV_MAX_RETRIES = "REPRO_CLUSTER_MAX_RETRIES"

#: how long to wait for Hello/PlanAck during handshakes
_HANDSHAKE_TIMEOUT_S = 30.0
#: multiplex tick; also bounds how stale a heartbeat check can be
_TICK_S = 0.02


def default_route_key(chunk: Sequence[Any]) -> Optional[Tuple]:
    """Sticky-routing key for a chunk, or None for any-worker dispatch.

    When every item in the chunk carries the same
    ``(model_name, task_id, unit_id)`` — the shape of a lockstep group
    of pass@k candidates for one problem — that coordinate is the key,
    so the whole group (and any sibling chunk of the same unit) lands
    on one worker and its compiled golden artifacts stay hot.
    """
    key = None
    for item in chunk:
        task_id = getattr(item, "task_id", None)
        unit_id = getattr(item, "unit_id", None)
        if task_id is None or unit_id is None:
            return None
        item_key = (getattr(item, "model_name", None), task_id, unit_id)
        if key is None:
            key = item_key
        elif item_key != key:
            return None
    return key


@dataclass
class ClusterProgress:
    """A live snapshot of one cluster executor's work so far."""

    chunks_done: int = 0
    items_out: int = 0
    requeues: int = 0
    worker_deaths: int = 0
    heartbeat_timeouts: int = 0
    workers_rejected: int = 0
    workers_alive: int = 0
    leases_inflight: int = 0


@dataclass
class _Lease:
    lease_id: int
    chunk_index: int
    items: List[Any]
    worker_id: int
    attempts: int


@dataclass
class _Worker:
    worker_id: int
    process: Any
    conn: Any
    last_seen: float
    alive: bool = True
    load: int = 0
    plan_acks: Dict[int, str] = field(default_factory=dict)


class _MapRun:
    """Per-``map_chunks``-invocation state (several may interleave)."""

    __slots__ = (
        "plan_id", "stage_names", "iterator", "exhausted",
        "queue", "inflight", "done", "next_pull", "next_yield",
    )

    def __init__(self, plan_id: int, stage_names: List[str],
                 iterator: Iterator[Sequence[Any]]) -> None:
        self.plan_id = plan_id
        self.stage_names = stage_names
        self.iterator = iterator
        self.exhausted = False
        #: chunks waiting for a worker: (index, items, attempts, key)
        self.queue: deque = deque()
        #: lease ids currently out for this run
        self.inflight: set = set()
        #: chunk_index -> (out_items, trace), completed but unyielded
        self.done: Dict[int, Tuple[List[Any], Any]] = {}
        self.next_pull = 0
        self.next_yield = 0

    def outstanding(self) -> int:
        return len(self.queue) + len(self.inflight) + len(self.done)

    def finished(self) -> bool:
        return self.exhausted and not self.outstanding()


class ClusterExecutor:
    """Coordinator for N socket-connected worker processes.

    Parameters mirror the environment surface (`REPRO_CLUSTER_*`):
    ``workers`` (worker process count), ``heartbeat_s`` (worker beat
    interval), ``timeout_s`` (silence after which a worker is declared
    dead; defaults to ``5 x heartbeat_s``), ``max_requeues`` (per-chunk
    requeue budget on worker death), ``window`` (chunks outstanding per
    pooled phase, default ``2 x workers``), ``lease_depth`` (leases one
    worker holds at once), ``route`` (chunk -> sticky key, default
    :func:`default_route_key`).

    ``worker_faults`` maps worker index to a fault-injection dict (see
    :func:`~repro.engine.cluster.worker.cluster_worker_main`) — the
    deterministic kill/hang/stale-build switchboard the fault tests and
    the CI smoke example use.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        heartbeat_s: Optional[float] = None,
        timeout_s: Optional[float] = None,
        max_requeues: Optional[int] = None,
        window: int = 0,
        lease_depth: int = 2,
        route: Optional[Callable[[Sequence[Any]], Optional[Tuple]]] = None,
        worker_faults: Optional[Dict[int, Dict[str, Any]]] = None,
    ) -> None:
        # Environment knobs go through the validated helpers: a bad
        # REPRO_CLUSTER_* value raises ConfigError naming the variable
        # here, at construction, not as a ValueError mid-run.
        count = workers if workers else env_int(_ENV_WORKERS, 0, minimum=0)
        self.workers = count if count > 0 else (os.cpu_count() or 1)
        self.heartbeat_s = (
            heartbeat_s
            if heartbeat_s is not None
            else env_float(_ENV_HEARTBEAT, DEFAULT_HEARTBEAT_S,
                           minimum=0.01)
        )
        self.timeout_s = (
            timeout_s
            if timeout_s is not None
            else env_float(_ENV_TIMEOUT, 5.0 * self.heartbeat_s,
                           minimum=0.01)
        )
        self.max_requeues = (
            max_requeues
            if max_requeues is not None
            else env_int(_ENV_MAX_RETRIES, 2, minimum=0)
        )
        #: one shared retry implementation decides the requeue budget
        #: (max_requeues requeues = max_requeues + 1 total attempts)
        self.retry = RetryPolicy(
            max_attempts=self.max_requeues + 1,
            base_delay_s=0.0,
            jitter=0.0,
        )
        self.window = window if window > 0 else 2 * self.workers
        self.lease_depth = max(1, lease_depth)
        self.route = route if route is not None else default_route_key
        self.worker_faults = dict(worker_faults or {})
        #: (chunk_index, route_key, worker_id) per lease, in lease order —
        #: the routing audit trail the tests and reports read
        self.lease_log: List[Tuple[int, Optional[Tuple], int]] = []
        self._stats = ClusterProgress()
        self._listener = None
        self._workers: Dict[int, _Worker] = {}
        self._leases: Dict[int, Tuple[_MapRun, _Lease]] = {}
        self._runs: List[_MapRun] = []
        self._plans: Dict[bytes, Tuple[int, str]] = {}
        self._lease_seq = itertools.count(1)
        self._plan_seq = itertools.count(1)
        self._sticky: Dict[Tuple, int] = {}
        self._started = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Spawn workers and complete the Hello handshake with each."""
        if self._started:
            return
        self._started = True
        authkey = os.urandom(16)
        with obs.span("cluster.start", workers=self.workers):
            self._listener = Listener(("127.0.0.1", 0), authkey=authkey)
            self._set_accept_timeout(_HANDSHAKE_TIMEOUT_S)
            ctx = get_context(
                "fork" if "fork" in get_all_start_methods() else None
            )
            procs = []
            for index in range(self.workers):
                process = ctx.Process(
                    target=cluster_worker_main,
                    kwargs={
                        "address": self._listener.address,
                        "authkey": authkey,
                        "worker_id": index,
                        "heartbeat_s": self.heartbeat_s,
                        "fault": self.worker_faults.get(index),
                    },
                    name=f"repro-cluster-worker-{index}",
                    daemon=True,
                )
                process.start()
                procs.append(process)
            for _ in range(self.workers):
                try:
                    conn = self._listener.accept()
                except Exception as exc:
                    raise ClusterError(
                        f"worker failed to connect: {exc}"
                    ) from exc
                if not conn.poll(_HANDSHAKE_TIMEOUT_S):
                    conn.close()
                    continue
                message = decode(conn.recv_bytes())
                if (
                    not isinstance(message, Hello)
                    or message.protocol != PROTOCOL_VERSION
                ):
                    conn.send_bytes(
                        encode(Shutdown(reason="protocol mismatch"))
                    )
                    conn.close()
                    self._stats.workers_rejected += 1
                    obs.count("cluster.workers_rejected")
                    continue
                self._workers[message.worker_id] = _Worker(
                    worker_id=message.worker_id,
                    process=procs[message.worker_id],
                    conn=conn,
                    last_seen=time.monotonic(),
                )
        if not self._workers:
            raise ClusterError("no cluster workers completed the handshake")
        self._update_gauges()

    def _set_accept_timeout(self, seconds: float) -> None:
        # Listener has no public accept timeout; best-effort on the
        # underlying socket so a worker that dies pre-connect fails the
        # run instead of hanging it.
        try:
            self._listener._listener._socket.settimeout(seconds)
        except AttributeError:
            pass

    def close(self) -> None:
        """Shut every worker down and release the listener."""
        for worker in self._workers.values():
            if worker.alive:
                try:
                    worker.conn.send_bytes(encode(Shutdown(reason="close")))
                except (OSError, ValueError):
                    pass
        deadline = Deadline(5.0)
        for worker in self._workers.values():
            worker.process.join(deadline.remaining())
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.alive = False
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        self._workers.clear()
        self._leases.clear()
        self._runs.clear()
        self._plans.clear()
        self._sticky.clear()
        self._started = False

    def __enter__(self) -> "ClusterExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self):
        # Checkpoints may pickle objects holding an executor; every
        # runtime handle is process-local and rebuilt on demand.
        state = self.__dict__.copy()
        for key in ("_listener", "_workers", "_leases", "_runs", "_plans",
                    "_sticky", "lease_log"):
            state[key] = type(state[key])()
        state["_started"] = False
        return state

    # -- introspection ----------------------------------------------------

    def progress(self) -> ClusterProgress:
        """A copy of the live counters (safe to hold across chunks)."""
        snap = ClusterProgress(**self._stats.__dict__)
        snap.workers_alive = sum(
            1 for w in self._workers.values() if w.alive
        )
        snap.leases_inflight = len(self._leases)
        return snap

    # -- the executor contract --------------------------------------------

    def map_chunks(
        self, stages: Sequence[Any], chunks: Iterable[Sequence[Any]]
    ) -> Iterator[Tuple[List[Any], Any]]:
        """Yield ``(out_chunk, trace)`` in submission order, clustered."""
        self.start()
        stages = list(stages)
        plan_id = self._handshake_plan(stages)
        run = _MapRun(plan_id, [s.name for s in stages], iter(chunks))
        self._runs.append(run)
        try:
            while not run.finished():
                self._pull(run)
                self._dispatch()
                self._pump(_TICK_S)
                self._reap_timeouts()
                self._check_liveness(run)
                while run.next_yield in run.done:
                    out, trace = run.done.pop(run.next_yield)
                    run.next_yield += 1
                    self._stats.chunks_done += 1
                    self._stats.items_out += len(out)
                    obs.count("cluster.chunks_done")
                    obs.count("cluster.items_out", len(out))
                    yield out, trace
        finally:
            self._retire_run(run)

    # -- plan handshake ---------------------------------------------------

    def _handshake_plan(self, stages: List[Any]) -> int:
        blob = pickle.dumps(stages, protocol=pickle.HIGHEST_PROTOCOL)
        cached = self._plans.get(blob)
        if cached is not None:
            return cached[0]
        plan_id = next(self._plan_seq)
        expected = plan_fingerprint(stages, blob)
        handshake = PlanHandshake(
            plan_id=plan_id,
            fingerprint=expected,
            stage_blob=blob,
            obs_mode=obs.mode(),
            obs_dir=obs.obs_dir(),
        )
        with obs.span(
            "cluster.handshake", plan=plan_id, stages=len(stages)
        ) as sp:
            for worker in self._alive_workers():
                self._send(worker, handshake)
            rejected = 0
            for worker in self._alive_workers():
                ack = self._await_plan_ack(worker, plan_id)
                if ack is None:
                    continue  # died during handshake; handled as death
                if ack != expected:
                    self._reject_worker(
                        worker,
                        f"stale plan fingerprint: worker computed {ack}, "
                        f"coordinator expects {expected}",
                    )
                    rejected += 1
            sp.set(rejected=rejected)
        if not self._alive_workers():
            raise StaleWorkerError(
                "every cluster worker was rejected at the plan-fingerprint "
                "handshake (stale build or mismatched backend version)"
            )
        self._plans[blob] = (plan_id, expected)
        self._update_gauges()
        return plan_id

    def _await_plan_ack(self, worker: _Worker, plan_id: int) -> Optional[str]:
        deadline = Deadline(_HANDSHAKE_TIMEOUT_S)
        while worker.alive and plan_id not in worker.plan_acks:
            if deadline.expired():
                self._on_worker_death(worker, "plan handshake timeout")
                return None
            self._pump(deadline.remaining(_TICK_S))
        return worker.plan_acks.get(plan_id)

    def _reject_worker(self, worker: _Worker, reason: str) -> None:
        self._stats.workers_rejected += 1
        obs.count("cluster.workers_rejected")
        obs.event("cluster.worker_rejected", worker=worker.worker_id,
                  reason=reason)
        try:
            self._send(worker, Shutdown(reason=reason))
        except ClusterError:
            return  # already counted as a death by _send
        worker.alive = False
        worker.process.join(1.0)
        if worker.process.is_alive():
            worker.process.terminate()
        self._requeue_worker_leases(worker)
        self._update_gauges()

    # -- dispatch and routing ---------------------------------------------

    def _pull(self, run: _MapRun) -> None:
        while not run.exhausted and run.outstanding() < self.window:
            try:
                chunk = next(run.iterator)
            except StopIteration:
                run.exhausted = True
                return
            key = self.route(chunk) if self.route else None
            run.queue.append((run.next_pull, list(chunk), 0, key))
            run.next_pull += 1

    def _target_for(self, key: Optional[Tuple]) -> Optional[_Worker]:
        alive = self._alive_workers()
        if not alive:
            return None
        if key is not None:
            worker_id = self._sticky.get(key)
            worker = self._workers.get(worker_id) if worker_id is not None else None
            if worker is not None and worker.alive:
                # Sticky chunks wait for their worker rather than spill
                # elsewhere — locality is the point of the key.
                return worker if worker.load < self.lease_depth else None
        candidates = [w for w in alive if w.load < self.lease_depth]
        if not candidates:
            return None
        worker = min(candidates, key=lambda w: (w.load, w.worker_id))
        if key is not None:
            self._sticky[key] = worker.worker_id
        return worker

    def _dispatch(self) -> None:
        for run in self._runs:
            undispatched: deque = deque()
            while run.queue:
                index, items, attempts, key = run.queue.popleft()
                worker = self._target_for(key)
                if worker is None:
                    undispatched.append((index, items, attempts, key))
                    continue
                lease = _Lease(
                    lease_id=next(self._lease_seq),
                    chunk_index=index,
                    items=items,
                    worker_id=worker.worker_id,
                    attempts=attempts,
                )
                self._leases[lease.lease_id] = (run, lease)
                run.inflight.add(lease.lease_id)
                worker.load += 1
                self.lease_log.append((index, key, worker.worker_id))
                obs.count("cluster.leases")
                try:
                    self._send(
                        worker,
                        ChunkLease(
                            lease_id=lease.lease_id,
                            plan_id=run.plan_id,
                            chunk_index=index,
                            items=items,
                        ),
                    )
                except ClusterError:
                    pass  # death handler already requeued the lease
            run.queue = undispatched

    # -- the shared message pump ------------------------------------------

    def _send(self, worker: _Worker, message: Any) -> None:
        try:
            # An armed "raise" here simulates a connection lost at send
            # time; the handler below treats it exactly like an OSError.
            faults.fire("cluster.send")
            worker.conn.send_bytes(encode(message))
        except (OSError, ValueError, faults.InjectedFault) as exc:
            self._on_worker_death(worker, f"send failed: {exc}")
            raise ClusterError(
                f"worker {worker.worker_id} connection lost"
            ) from exc

    def _pump(self, timeout: float) -> None:
        """Drain every readable connection, routing messages by type."""
        conns = {
            w.conn: w for w in self._workers.values() if w.alive
        }
        if not conns:
            time.sleep(timeout)
            return
        for conn in connection_wait(list(conns), timeout=timeout):
            worker = conns[conn]
            while worker.alive:
                try:
                    if not conn.poll(0):
                        break
                    faults.fire("cluster.recv")
                    message = decode(conn.recv_bytes())
                except (EOFError, OSError, faults.InjectedFault):
                    self._on_worker_death(worker, "connection closed")
                    break
                worker.last_seen = time.monotonic()
                self._handle_message(worker, message)

    def _handle_message(self, worker: _Worker, message: Any) -> None:
        if isinstance(message, Heartbeat):
            return
        if isinstance(message, ChunkResult):
            entry = self._leases.pop(message.lease_id, None)
            if entry is None:
                obs.count("cluster.orphan_results")
                return
            run, lease = entry
            run.inflight.discard(lease.lease_id)
            worker.load = max(0, worker.load - 1)
            run.done[message.chunk_index] = (message.items, message.trace)
            return
        if isinstance(message, PlanAck):
            worker.plan_acks[message.plan_id] = message.fingerprint
            return
        if isinstance(message, Requeue):
            entry = self._leases.pop(message.lease_id, None)
            if entry is None:
                return
            run, lease = entry
            run.inflight.discard(lease.lease_id)
            worker.load = max(0, worker.load - 1)
            self._requeue_chunk(run, lease, message.reason or "handed back")
            return
        # Hello after start, or anything else: tolerated, never fatal.

    # -- fault recovery ---------------------------------------------------

    def _requeue_chunk(self, run: _MapRun, lease: _Lease, reason: str) -> None:
        attempts = lease.attempts + 1
        if not self.retry.grant(attempts):
            raise WorkerDiedError(
                chunk_index=lease.chunk_index,
                stage=" -> ".join(run.stage_names),
                attempts=attempts,
                detail=reason,
            )
        self._stats.requeues += 1
        obs.count("cluster.requeues")
        obs.event(
            "cluster.requeue",
            chunk=lease.chunk_index,
            attempts=attempts,
            reason=reason,
        )
        key = self.route(lease.items) if self.route else None
        run.queue.appendleft((lease.chunk_index, lease.items, attempts, key))

    def _requeue_worker_leases(self, worker: _Worker) -> None:
        lost = sorted(
            (
                (run, lease)
                for run, lease in self._leases.values()
                if lease.worker_id == worker.worker_id
            ),
            key=lambda entry: entry[1].chunk_index,
            reverse=True,  # appendleft keeps ascending order up front
        )
        for run, lease in lost:
            del self._leases[lease.lease_id]
            run.inflight.discard(lease.lease_id)
            self._requeue_chunk(
                run, lease, f"worker {worker.worker_id} lost"
            )
        # The dead worker's sticky keys migrate on next dispatch.
        for key, worker_id in list(self._sticky.items()):
            if worker_id == worker.worker_id:
                del self._sticky[key]
        worker.load = 0

    def _on_worker_death(self, worker: _Worker, reason: str) -> None:
        if not worker.alive:
            return
        worker.alive = False
        self._stats.worker_deaths += 1
        obs.count("cluster.worker_deaths")
        obs.event(
            "cluster.worker_death", worker=worker.worker_id, reason=reason
        )
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        self._requeue_worker_leases(worker)
        self._update_gauges()

    def _reap_timeouts(self) -> None:
        now = time.monotonic()
        for worker in self._alive_workers():
            if now - worker.last_seen > self.timeout_s:
                self._stats.heartbeat_timeouts += 1
                obs.count("cluster.heartbeat_timeouts")
                self._on_worker_death(
                    worker,
                    f"heartbeat timeout ({self.timeout_s:.1f}s silent)",
                )

    def _check_liveness(self, run: _MapRun) -> None:
        if self._alive_workers():
            return
        if run.outstanding() or not run.exhausted:
            raise ClusterError(
                "every cluster worker died with work outstanding "
                f"(chunks {run.next_yield}.. of run plan={run.plan_id})"
            )

    # -- internals --------------------------------------------------------

    def _alive_workers(self) -> List[_Worker]:
        return [w for w in self._workers.values() if w.alive]

    def _update_gauges(self) -> None:
        obs.gauge("cluster.workers_alive", len(self._alive_workers()))

    def _retire_run(self, run: _MapRun) -> None:
        if run in self._runs:
            self._runs.remove(run)
        for lease_id in list(run.inflight):
            entry = self._leases.pop(lease_id, None)
            if entry is None:
                continue
            worker = self._workers.get(entry[1].worker_id)
            if worker is not None:
                worker.load = max(0, worker.load - 1)
        run.inflight.clear()
