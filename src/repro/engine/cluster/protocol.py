"""Typed, versioned protocol messages for the cluster layer.

The coordinator and its workers speak in small dataclass messages, each
carrying an explicit schema version on the wire — the production-actor
shape (cf. gridworks' ``named_types``) rather than a bespoke RPC blob.
The full conversation:

==================  =======================  ==============================
message             direction                meaning
==================  =======================  ==============================
``Hello``           worker -> coordinator    join: worker id, pid, protocol
``PlanHandshake``   coordinator -> worker    fused stage blob + expected
                                             plan fingerprint + obs config
``PlanAck``         worker -> coordinator    fingerprint the worker computed
                                             from the blob it deserialized
``ChunkLease``      coordinator -> worker    one chunk of work, leased
``ChunkResult``     worker -> coordinator    chunk output + its
                                             :class:`~repro.engine.ChunkTrace`
``Heartbeat``       worker -> coordinator    liveness (sent from a side
                                             thread, so a busy worker still
                                             beats; a wedged one goes quiet)
``Requeue``         worker -> coordinator    lease handed back unprocessed
``Shutdown``        coordinator -> worker    drain and exit (also used to
                                             reject a stale/foreign worker)
==================  =======================  ==============================

Serialization is :func:`encode`/:func:`decode`: a pickled
``(schema_version, type_tag, fields)`` triple.  ``decode`` refuses a
mismatched schema version or an unknown type tag with
:class:`ProtocolError` — a worker from a different build cannot slip a
malformed message past the coordinator.

The *plan fingerprint* (:func:`plan_fingerprint`) hashes the compiled
graph structure (stage names, classes, declared stage versions), the
exact pickled stage payload, the protocol schema, and the simulator's
:data:`~repro.sim.cache.BACKEND_VERSION`.  Coordinator and worker
compute it independently — the coordinator from what it sent, the worker
from what it deserialized plus its own backend version — so a stale
worker (old simulator semantics, old protocol) is rejected at handshake
instead of poisoning a run with divergent verdicts.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Type

from repro.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "ClusterError",
    "ProtocolError",
    "StaleWorkerError",
    "Hello",
    "PlanHandshake",
    "PlanAck",
    "ChunkLease",
    "ChunkResult",
    "Heartbeat",
    "Requeue",
    "Shutdown",
    "encode",
    "decode",
    "plan_fingerprint",
]

#: wire-schema version; bump on any message shape change
PROTOCOL_VERSION = 1


class ClusterError(ReproError):
    """Base class for cluster coordinator/worker failures."""


class ProtocolError(ClusterError):
    """A message failed schema validation (version, type, or fields)."""


class StaleWorkerError(ClusterError):
    """Every worker failed the plan-fingerprint handshake."""


@dataclass
class Hello:
    """Worker introduces itself right after connecting."""

    TYPE = "hello"

    worker_id: int
    pid: int
    protocol: int = PROTOCOL_VERSION


@dataclass
class PlanHandshake:
    """Coordinator ships one fused stage list and its identity."""

    TYPE = "plan_handshake"

    plan_id: int
    fingerprint: str
    stage_blob: bytes
    obs_mode: str = "off"
    obs_dir: str = ""


@dataclass
class PlanAck:
    """Worker's independently computed fingerprint for a plan."""

    TYPE = "plan_ack"

    worker_id: int
    plan_id: int
    fingerprint: str


@dataclass
class ChunkLease:
    """One chunk leased to one worker until a result or a requeue."""

    TYPE = "chunk_lease"

    lease_id: int
    plan_id: int
    chunk_index: int
    items: List[Any] = field(default_factory=list)


@dataclass
class ChunkResult:
    """A completed lease: output items plus the chunk's trace."""

    TYPE = "chunk_result"

    lease_id: int
    chunk_index: int
    items: List[Any] = field(default_factory=list)
    trace: Any = None


@dataclass
class Heartbeat:
    """Periodic liveness signal, sent even while a chunk is running."""

    TYPE = "heartbeat"

    worker_id: int


@dataclass
class Requeue:
    """Worker hands a lease back (e.g. it never saw the lease's plan)."""

    TYPE = "requeue"

    lease_id: int
    reason: str = ""


@dataclass
class Shutdown:
    """Coordinator tells a worker to exit; ``reason`` names why."""

    TYPE = "shutdown"

    reason: str = ""


_MESSAGE_TYPES: Dict[str, Type] = {
    cls.TYPE: cls
    for cls in (
        Hello,
        PlanHandshake,
        PlanAck,
        ChunkLease,
        ChunkResult,
        Heartbeat,
        Requeue,
        Shutdown,
    )
}


def encode(message: Any) -> bytes:
    """Serialize a protocol message for the wire."""
    type_tag = getattr(type(message), "TYPE", None)
    if type_tag not in _MESSAGE_TYPES:
        raise ProtocolError(f"not a protocol message: {message!r}")
    payload = {f.name: getattr(message, f.name) for f in fields(message)}
    return pickle.dumps(
        (PROTOCOL_VERSION, type_tag, payload),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode(data: bytes) -> Any:
    """Deserialize and validate one wire message.

    Raises :class:`ProtocolError` on a schema-version mismatch, an
    unknown type tag, or a field set the message class does not declare.
    """
    try:
        version, type_tag, payload = pickle.loads(data)
    except Exception as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"this build speaks {PROTOCOL_VERSION}"
        )
    cls = _MESSAGE_TYPES.get(type_tag)
    if cls is None:
        raise ProtocolError(f"unknown message type {type_tag!r}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ProtocolError(
            f"bad fields for {type_tag!r}: {exc}"
        ) from exc


def plan_fingerprint(
    stages: Sequence[Any],
    stage_blob: bytes,
    backend_version: Optional[int] = None,
    cegis_token: Optional[str] = None,
) -> str:
    """Identity of one fused stage list as executed *by this build*.

    Covers the graph structure (stage names, classes, and any declared
    ``STAGE_VERSION``), the exact pickled stage payload, the wire schema,
    the simulator backend version, and the active CEGIS checking
    configuration (which changes verdict semantics without changing any
    stage).  Both sides compute it — the worker from the blob it
    deserialized and its own local configuration — so equality means
    "same plan, same semantics".
    """
    if backend_version is None:
        from repro.sim.cache import BACKEND_VERSION

        backend_version = BACKEND_VERSION
    if cegis_token is None:
        from repro.vereval.cegis import fingerprint_token

        cegis_token = fingerprint_token()
    digest = hashlib.sha256()
    digest.update(f"repro.cluster/{PROTOCOL_VERSION}".encode("utf-8"))
    digest.update(f"/backend:{backend_version}".encode("utf-8"))
    digest.update(f"/cegis:{cegis_token}".encode("utf-8"))
    for stage in stages:
        descriptor = (
            stage.name,
            type(stage).__module__,
            type(stage).__qualname__,
            getattr(stage, "STAGE_VERSION", 0),
        )
        digest.update(repr(descriptor).encode("utf-8"))
    digest.update(hashlib.sha256(stage_blob).digest())
    return digest.hexdigest()[:16]
