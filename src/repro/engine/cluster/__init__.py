"""repro.engine.cluster — sharded coordinator/worker chunk execution.

The next scale axis past the in-process pool: a
:class:`ClusterExecutor` coordinator shards any
:class:`~repro.engine.StageGraph`'s parallel-safe pooled phases across
N worker *processes behind a socket*, speaking small typed, versioned
protocol messages.  Leases with heartbeats and a bounded requeue budget
survive worker death; a plan-fingerprint handshake rejects stale
workers; sticky shape-aware routing keeps lockstep pass@k groups (and
their hot ``sim.cache``) on one worker; results stream back in
submission order so verdicts are identical to a serial run.

Layout:

* :mod:`repro.engine.cluster.protocol` — wire messages, schema
  versioning, and the plan fingerprint;
* :mod:`repro.engine.cluster.worker` — the worker process entry point
  (handshake, heartbeat thread, lease loop, fault injection);
* :mod:`repro.engine.cluster.coordinator` — :class:`ClusterExecutor`:
  lease tracking, requeue, routing, streaming merge.
"""

from repro.engine.cluster.coordinator import (
    ClusterExecutor,
    ClusterProgress,
    default_route_key,
)
from repro.engine.cluster.protocol import (
    PROTOCOL_VERSION,
    ChunkLease,
    ChunkResult,
    ClusterError,
    Heartbeat,
    Hello,
    PlanAck,
    PlanHandshake,
    ProtocolError,
    Requeue,
    Shutdown,
    StaleWorkerError,
    decode,
    encode,
    plan_fingerprint,
)
from repro.engine.cluster.worker import DEFAULT_HEARTBEAT_S, cluster_worker_main

__all__ = [
    "ClusterExecutor",
    "ClusterProgress",
    "default_route_key",
    "PROTOCOL_VERSION",
    "ChunkLease",
    "ChunkResult",
    "ClusterError",
    "Heartbeat",
    "Hello",
    "PlanAck",
    "PlanHandshake",
    "ProtocolError",
    "Requeue",
    "Shutdown",
    "StaleWorkerError",
    "decode",
    "encode",
    "plan_fingerprint",
    "DEFAULT_HEARTBEAT_S",
    "cluster_worker_main",
]
