"""Stage protocol and per-stage metrics for the execution engine.

A :class:`Stage` transforms one *chunk* (a list of items) at a time.
Filter and map stages are pure per-item functions and may be fanned out
across worker processes; stateful stages (de-duplication) mutate internal
state and always run in the driving process, in stream order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence


@dataclass
class StageMetrics:
    """In/out accounting and throughput for one stage of one run."""

    name: str
    in_count: int = 0
    out_count: int = 0
    wall_seconds: float = 0.0
    chunks: int = 0

    @property
    def removed(self) -> int:
        return self.in_count - self.out_count

    @property
    def removal_fraction(self) -> float:
        return self.removed / self.in_count if self.in_count else 0.0

    @property
    def items_per_second(self) -> float:
        return self.in_count / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def record_chunk(self, in_count: int, out_count: int, seconds: float) -> None:
        self.in_count += in_count
        self.out_count += out_count
        self.wall_seconds += seconds
        self.chunks += 1

    def reset(self) -> None:
        self.in_count = 0
        self.out_count = 0
        self.wall_seconds = 0.0
        self.chunks = 0

    def to_text(self) -> str:
        return (
            f"{self.name:<18} in={self.in_count:<7} out={self.out_count:<7} "
            f"removed={self.removed:<7} {self.wall_seconds:7.3f}s "
            f"{self.items_per_second:10.0f} items/s"
        )


class Stage:
    """Base class for all engine stages."""

    #: funnel/metrics name; also the registry key for registered stages
    name: str = "stage"
    #: True when ``process`` is a pure function of the chunk (no state),
    #: so chunks may be dispatched to worker processes in any order
    parallel_safe: bool = True

    def reset(self) -> None:
        """Clear any accumulated state before a fresh run."""

    def process(self, chunk: Sequence[Any]) -> List[Any]:
        raise NotImplementedError

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Any:
        """Picklable snapshot of stage state (None for stateless stages)."""
        return None

    def load_state(self, state: Any) -> None:
        """Restore state captured by :meth:`state_dict`."""


class FilterStage(Stage):
    """Keeps items satisfying :meth:`accepts`; order-preserving."""

    def accepts(self, item: Any) -> bool:
        raise NotImplementedError

    def process(self, chunk: Sequence[Any]) -> List[Any]:
        return [item for item in chunk if self.accepts(item)]


class MapStage(Stage):
    """Transforms every item via :meth:`map_item` (1:1, order-preserving)."""

    def map_item(self, item: Any) -> Any:
        raise NotImplementedError

    def process(self, chunk: Sequence[Any]) -> List[Any]:
        return [self.map_item(item) for item in chunk]


class StatefulStage(Stage):
    """Marker base for stages carrying cross-chunk state.

    Such stages must see every chunk exactly once, in stream order, in
    the driving process — the graph never fans them out.
    """

    parallel_safe = False


class FunctionFilterStage(FilterStage):
    """A filter stage from a plain (picklable) predicate."""

    def __init__(self, name: str, predicate: Callable[[Any], bool]) -> None:
        self.name = name
        self._predicate = predicate

    def accepts(self, item: Any) -> bool:
        return self._predicate(item)
