"""Declarative stage registry.

Stages register under a short name; pipelines are then *declared* as
``(name, params)`` spec lists and compiled with :func:`build_stages`.
This keeps stage composition data — a config, a checkpoint, a CLI flag —
rather than code, and lets downstream packages add stages without
touching the engine.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple, Union

from repro.engine.stage import Stage

_REGISTRY: Dict[str, Callable[..., Stage]] = {}

StageSpec = Union[str, Tuple[str, Mapping]]


def register_stage(name: str):
    """Class/factory decorator adding a stage under ``name``."""

    def decorate(factory: Callable[..., Stage]) -> Callable[..., Stage]:
        if name in _REGISTRY:
            raise ValueError(f"stage {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return decorate


def registered_stages() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def create_stage(name: str, **params) -> Stage:
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown stage {name!r}; registered: {registered_stages()}"
        ) from None
    return factory(**params)


def build_stages(specs: Sequence[StageSpec]) -> List[Stage]:
    """Compile ``["license_filter", ("dedup", {...}), ...]`` into stages."""
    stages: List[Stage] = []
    for spec in specs:
        if isinstance(spec, str):
            stages.append(create_stage(spec))
        else:
            name, params = spec
            stages.append(create_stage(name, **dict(params)))
    return stages
