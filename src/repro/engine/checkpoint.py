"""Durable pickle-per-key checkpoint store.

Writes are crash-safe: the payload is written to a temp file, flushed
and fsynced, atomically renamed over the target with ``os.replace``,
and the directory entry is fsynced too.  A crash mid-save — including a
power cut or a hard-killed coordinator, which ``os.replace`` alone does
not cover because the rename can hit disk before the data — leaves
either the old snapshot or the new one, never a torn file.  That
durability is what cluster coordinator-loss resume leans on.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, List, Union


class CheckpointStore:
    """Directory-backed key/value store for engine snapshots."""

    SUFFIX = ".ckpt"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not key or "/" in key or key.startswith("."):
            raise ValueError(f"invalid checkpoint key {key!r}")
        return self.root / f"{key}{self.SUFFIX}"

    def save(self, key: str, obj: Any) -> None:
        """Atomically persist ``obj`` under ``key``."""
        path = self._path(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
            self._fsync_dir()
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _fsync_dir(self) -> None:
        # Persist the rename itself; best-effort where directories
        # cannot be opened or fsynced (some filesystems/platforms).
        try:
            dir_fd = os.open(str(self.root), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    def load(self, key: str, default: Any = None) -> Any:
        path = self._path(key)
        if not path.exists():
            return default
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> List[str]:
        return sorted(
            p.name[: -len(self.SUFFIX)]
            for p in self.root.glob(f"*{self.SUFFIX}")
        )

    def delete(self, key: str) -> bool:
        path = self._path(key)
        if path.exists():
            path.unlink()
            return True
        return False

    def clear(self) -> None:
        for key in self.keys():
            self.delete(key)
