"""Durable pickle-per-key checkpoint store with generation fallback.

Writes are crash-safe: the payload is written to a temp file, flushed
and fsynced, atomically renamed over the target with ``os.replace``,
and the directory entry is fsynced too.  A crash mid-save — including a
power cut or a hard-killed coordinator, which ``os.replace`` alone does
not cover because the rename can hit disk before the data — leaves
either the old snapshot or the new one, never a torn file.  That
durability is what cluster coordinator-loss resume leans on.

On top of the atomic write, every key keeps **two generations**: saving
rotates the current snapshot to ``<key>.ckpt.1`` before the new one
lands.  A load that finds the newest generation truncated or otherwise
unreadable — bit-rot, a filesystem that reordered the rename ahead of
the data, a fault-injected torn write — falls back to the previous
generation instead of stranding the run, counting
``checkpoint.corrupt_recovered`` so silent media problems surface in
telemetry.  Only when *no* generation is readable does the original
error propagate.

The save path hosts the ``checkpoint.save`` fault point
(:mod:`repro.testing.faults`): ``raise`` / ``exit`` fire before any
bytes move, and the site-interpreted ``torn`` kind corrupts the
just-written snapshot — which is how the recovery fallback is tested
without staging a real power cut.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, List, Union

from repro import obs
from repro.testing import faults


class CheckpointStore:
    """Directory-backed key/value store for engine snapshots."""

    SUFFIX = ".ckpt"
    #: suffix of the previous-generation snapshot a save rotates aside
    PREV_SUFFIX = ".ckpt.1"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not key or "/" in key or key.startswith("."):
            raise ValueError(f"invalid checkpoint key {key!r}")
        return self.root / f"{key}{self.SUFFIX}"

    def _prev_path(self, key: str) -> Path:
        return self.root / f"{key}{self.PREV_SUFFIX}"

    def save(self, key: str, obj: Any) -> None:
        """Atomically persist ``obj`` under ``key``, keeping one prior
        generation as the corruption-recovery fallback."""
        path = self._path(key)
        kind = faults.fire("checkpoint.save")
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            # Rotate the readable current snapshot aside first: every
            # crash window leaves either the new generation at the key
            # or the old one at the .1 suffix — load checks both.
            if path.exists():
                os.replace(path, self._prev_path(key))
            os.replace(tmp_name, path)
            self._fsync_dir()
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if kind == "torn":
            # Injected bit-rot: truncate the snapshot we just wrote, so
            # the next load exercises the generation fallback.
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))

    def _fsync_dir(self) -> None:
        # Persist the rename itself; best-effort where directories
        # cannot be opened or fsynced (some filesystems/platforms).
        try:
            dir_fd = os.open(str(self.root), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    def load(self, key: str, default: Any = None) -> Any:
        """The newest readable generation of ``key`` (or ``default``).

        A truncated or corrupt newest generation falls back to the
        rotated previous one, counting ``checkpoint.corrupt_recovered``;
        when neither generation is readable the newest generation's
        error propagates (a fallback would silently rewind the run).
        """
        paths = (self._path(key), self._prev_path(key))
        first_error = None
        for index, path in enumerate(paths):
            if not path.exists():
                continue
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
                continue
            if index > 0:
                obs.count("checkpoint.corrupt_recovered")
                obs.event(
                    "checkpoint.corrupt_recovered",
                    key=key,
                    generation=index,
                )
            return value
        if first_error is not None:
            raise first_error
        return default

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists() or self._prev_path(key).exists()

    def keys(self) -> List[str]:
        current = {
            p.name[: -len(self.SUFFIX)]
            for p in self.root.glob(f"*{self.SUFFIX}")
        }
        previous = {
            p.name[: -len(self.PREV_SUFFIX)]
            for p in self.root.glob(f"*{self.PREV_SUFFIX}")
        }
        return sorted(current | previous)

    def delete(self, key: str) -> bool:
        deleted = False
        for path in (self._path(key), self._prev_path(key)):
            if path.exists():
                path.unlink()
                deleted = True
        return deleted

    def clear(self) -> None:
        for key in self.keys():
            self.delete(key)
