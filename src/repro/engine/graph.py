"""The streaming stage-graph runner.

A :class:`StageGraph` pushes items through an ordered list of stages in
fixed-size chunks, so no intermediate stage ever materializes the whole
corpus.  Consecutive parallel-safe stages are fused and dispatched
through the executor (a no-op fusion under :class:`SerialExecutor`);
stateful stages run inline, in stream order, and keep their state across
:meth:`ingest` calls — which is what makes incremental re-curation
possible without reprocessing history.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.checkpoint import CheckpointStore
from repro.engine.executor import SerialExecutor, StageStat
from repro.engine.stage import Stage, StageMetrics

DEFAULT_CHUNK_SIZE = 512


def iter_chunks(items: Iterable[Any], size: int) -> Iterator[List[Any]]:
    """Slice any iterable into lists of at most ``size`` items."""
    chunk: List[Any] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class StageGraph:
    """Runs a linear pipeline of stages over chunked item streams."""

    def __init__(
        self,
        stages: Sequence[Stage],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        executor=None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.stages: List[Stage] = list(stages)
        self.chunk_size = chunk_size
        self.executor = executor or SerialExecutor()
        self.metrics: List[StageMetrics] = [
            StageMetrics(stage.name) for stage in self.stages
        ]
        self._metrics_by_name = {m.name: m for m in self.metrics}
        #: total items fed through :meth:`run`/:meth:`ingest` so far
        self.items_in = 0

    # -- lifecycle --------------------------------------------------------

    def reset(self) -> None:
        """Clear stage state and metrics for a fresh full run."""
        for stage in self.stages:
            stage.reset()
        for metric in self.metrics:
            metric.reset()
        self.items_in = 0

    def run(self, items: Iterable[Any]) -> List[Any]:
        """Full run: reset all state, then stream ``items`` through."""
        self.reset()
        return self.ingest(items)

    def ingest(self, items: Iterable[Any]) -> List[Any]:
        """Stream an (additional) batch through without resetting state.

        Stateful stages continue from where the previous batch left off,
        so feeding batches B1, B2 produces exactly the items a single run
        over B1+B2 would keep.
        Returns the items of this batch that survive every stage.
        """
        stream: Iterator[List[Any]] = self._counting_chunks(items)
        for parallel, group in self._phases():
            if parallel:
                stream = self._pooled_phase(group, stream)
            else:
                stream = self._inline_phase(group[0], stream)
        out: List[Any] = []
        for chunk in stream:
            out.extend(chunk)
        return out

    # -- internals --------------------------------------------------------

    def _counting_chunks(self, items: Iterable[Any]) -> Iterator[List[Any]]:
        for chunk in iter_chunks(items, self.chunk_size):
            self.items_in += len(chunk)
            yield chunk

    def _phases(self) -> List[Tuple[bool, List[Stage]]]:
        """Group consecutive parallel-safe stages into fused phases."""
        phases: List[Tuple[bool, List[Stage]]] = []
        for stage in self.stages:
            if (
                stage.parallel_safe
                and phases
                and phases[-1][0]
            ):
                phases[-1][1].append(stage)
            else:
                phases.append((stage.parallel_safe, [stage]))
        return phases

    def _pooled_phase(
        self, stages: List[Stage], stream: Iterator[List[Any]]
    ) -> Iterator[List[Any]]:
        for out_chunk, trace in self.executor.map_chunks(stages, stream):
            for stat in trace.stats:
                self._metrics_by_name[stat.stage].record_chunk(
                    stat.n_in, stat.n_out, stat.seconds
                )
            # Fold the chunk's spans/metrics into the run trace here, in
            # submission order: parallel traces end up as complete (and
            # as deterministic) as serial ones.
            obs.merge_buffer(trace.obs)
            yield out_chunk

    def _inline_phase(
        self, stage: Stage, stream: Iterator[List[Any]]
    ) -> Iterator[List[Any]]:
        metric = self._metrics_by_name[stage.name]
        for chunk in stream:
            with obs.span(
                f"engine.stage.{stage.name}", n_in=len(chunk), inline=True
            ) as sp:
                start = time.perf_counter()
                out = stage.process(chunk)
                seconds = time.perf_counter() - start
                sp.set(n_out=len(out))
            metric.record_chunk(len(chunk), len(out), seconds)
            yield out

    # -- introspection ----------------------------------------------------

    def metric(self, name: str) -> Optional[StageMetrics]:
        return self._metrics_by_name.get(name)

    def stage_stats(self) -> List[StageStat]:
        """Aggregate per-stage accounting as typed :class:`StageStat` rows."""
        return [
            StageStat(m.name, m.in_count, m.out_count, m.wall_seconds)
            for m in self.metrics
        ]

    def to_text(self) -> str:
        """Human-readable per-stage throughput table."""
        return "\n".join(m.to_text() for m in self.metrics)

    # -- checkpointing ----------------------------------------------------

    def checkpoint_state(self, exclude: Sequence[str] = ()) -> dict:
        """Picklable snapshot: progress counters, metrics, stage state.

        Callers holding extra state of their own should embed this dict
        in a single :meth:`CheckpointStore.save` so the whole snapshot
        stays atomic.  Stages named in ``exclude`` snapshot as None —
        for callers that persist that state through their own channel
        (e.g. append-only record segments) and would otherwise pay for a
        full copy per checkpoint.
        """
        return {
            "items_in": self.items_in,
            "metrics": [
                (m.name, m.in_count, m.out_count, m.wall_seconds, m.chunks)
                for m in self.metrics
            ],
            "stages": {
                stage.name: (
                    None if stage.name in exclude else stage.state_dict()
                )
                for stage in self.stages
            },
        }

    def save_checkpoint(self, store: CheckpointStore, tag: str = "engine") -> None:
        """Persist :meth:`checkpoint_state` under ``tag``."""
        store.save(tag, self.checkpoint_state())

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`checkpoint_state`.

        Raises :class:`ValueError` when the snapshot's stage set differs
        from this graph's — a half-restored graph (some stages fresh,
        some resumed) would silently produce wrong results.
        """
        snapshot_stages = set(state["stages"])
        graph_stages = {stage.name for stage in self.stages}
        if snapshot_stages != graph_stages:
            raise ValueError(
                "checkpoint stage set does not match graph: snapshot has "
                f"{sorted(snapshot_stages)}, graph has {sorted(graph_stages)}"
            )
        self.items_in = state["items_in"]
        for name, in_count, out_count, wall_seconds, chunks in state["metrics"]:
            metric = self._metrics_by_name.get(name)
            if metric is None:
                continue
            metric.in_count = in_count
            metric.out_count = out_count
            metric.wall_seconds = wall_seconds
            metric.chunks = chunks
        for stage in self.stages:
            if stage.name in state["stages"]:
                stage.load_state(state["stages"][stage.name])

    def load_checkpoint(self, store: CheckpointStore, tag: str = "engine") -> bool:
        """Restore a snapshot saved by :meth:`save_checkpoint`.

        Returns False (leaving the graph untouched) when no snapshot with
        ``tag`` exists.
        """
        state = store.load(tag)
        if state is None:
            return False
        self.restore_state(state)
        return True
