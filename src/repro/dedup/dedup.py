"""End-to-end streaming de-duplication.

Files are processed in order; each file's MinHash signature is queried
against an LSH index of the already-kept files, and the file is discarded
when any candidate's estimated Jaccard similarity reaches the threshold
(paper: 0.85).  Processing in corpus order keeps the *first* publication
of each duplicate cluster, matching the intuition that the original is
the canonical copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.dedup.lsh import LSHIndex, choose_bands
from repro.dedup.minhash import (
    DEFAULT_NUM_PERMUTATIONS,
    MinHasher,
    estimate_jaccard,
)

DEFAULT_DEDUP_THRESHOLD = 0.85


@dataclass
class DedupResult:
    """Outcome of a de-duplication run."""

    kept_keys: List[Hashable] = field(default_factory=list)
    #: discarded key -> the kept key it duplicated
    removed: Dict[Hashable, Hashable] = field(default_factory=dict)
    threshold: float = DEFAULT_DEDUP_THRESHOLD
    candidate_checks: int = 0

    @property
    def kept_count(self) -> int:
        return len(self.kept_keys)

    @property
    def removed_count(self) -> int:
        return len(self.removed)

    @property
    def removal_fraction(self) -> float:
        total = self.kept_count + self.removed_count
        return self.removed_count / total if total else 0.0


def deduplicate(
    items: Sequence[Tuple[Hashable, str]],
    threshold: float = DEFAULT_DEDUP_THRESHOLD,
    num_permutations: int = DEFAULT_NUM_PERMUTATIONS,
    seed: int = 0x5EED,
) -> DedupResult:
    """De-duplicate ``(key, text)`` pairs, keeping first occurrences.

    Returns which keys were kept and, for each removed key, the retained
    key it matched.
    """
    hasher = MinHasher(num_permutations=num_permutations, seed=seed)
    bands, rows = choose_bands(num_permutations, threshold)
    index = LSHIndex(bands, rows)
    result = DedupResult(threshold=threshold)

    for key, text in items:
        signature = hasher.signature(text)
        match = None
        for candidate in index.candidates(signature):
            result.candidate_checks += 1
            if estimate_jaccard(signature, index.signature_of(candidate)) >= threshold:
                match = candidate
                break
        if match is None:
            index.insert(key, signature)
            result.kept_keys.append(key)
        else:
            result.removed[key] = match
    return result
