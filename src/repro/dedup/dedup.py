"""End-to-end streaming de-duplication.

Files are processed in order; each file's MinHash signature is queried
against an LSH index of the already-kept files, and the file is discarded
when any candidate's estimated Jaccard similarity reaches the threshold
(paper: 0.85).  Processing in corpus order keeps the *first* publication
of each duplicate cluster, matching the intuition that the original is
the canonical copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.dedup.lsh import LSHIndex, choose_bands
from repro.dedup.minhash import (
    DEFAULT_NUM_PERMUTATIONS,
    MinHasher,
    estimate_jaccard,
)

DEFAULT_DEDUP_THRESHOLD = 0.85


@dataclass
class DedupResult:
    """Outcome of a de-duplication run."""

    kept_keys: List[Hashable] = field(default_factory=list)
    #: discarded key -> the kept key it duplicated
    removed: Dict[Hashable, Hashable] = field(default_factory=dict)
    threshold: float = DEFAULT_DEDUP_THRESHOLD
    candidate_checks: int = 0

    @property
    def kept_count(self) -> int:
        return len(self.kept_keys)

    @property
    def removed_count(self) -> int:
        return len(self.removed)

    @property
    def removal_fraction(self) -> float:
        total = self.kept_count + self.removed_count
        return self.removed_count / total if total else 0.0


class StreamingDeduplicator:
    """Order-preserving streaming dedup with externally ownable state.

    Files are offered one (or a batch) at a time; the LSH index of kept
    files persists between offers, so a caller can feed incremental
    batches across a long-lived run — or pickle the whole object as a
    checkpoint — without ever re-deduplicating already-processed files.
    Candidates are scanned in index insertion order, so the
    ``removed -> kept`` attribution is stable across ``PYTHONHASHSEED``.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_DEDUP_THRESHOLD,
        num_permutations: int = DEFAULT_NUM_PERMUTATIONS,
        seed: int = 0x5EED,
    ) -> None:
        self.threshold = threshold
        self.hasher = MinHasher(num_permutations=num_permutations, seed=seed)
        bands, rows = choose_bands(num_permutations, threshold)
        self.index = LSHIndex(bands, rows)
        self.result = DedupResult(threshold=threshold)

    def offer_signature(self, key: Hashable, signature) -> bool:
        """Keep ``key`` unless ``signature`` duplicates a kept file.

        Returns True when the file was kept (and indexed).
        """
        match = None
        for candidate in self.index.candidates_in_order(signature):
            self.result.candidate_checks += 1
            if (
                estimate_jaccard(signature, self.index.signature_of(candidate))
                >= self.threshold
            ):
                match = candidate
                break
        if match is None:
            self.index.insert(key, signature)
            self.result.kept_keys.append(key)
            return True
        self.result.removed[key] = match
        return False

    def offer(self, key: Hashable, text: str) -> bool:
        """Signature-and-offer one ``(key, text)`` pair."""
        return self.offer_signature(key, self.hasher.signature(text))

    def offer_batch(
        self, items: Sequence[Tuple[Hashable, str]]
    ) -> List[Hashable]:
        """Offer many pairs, batching signature computation; returns kept keys.

        Semantically identical to calling :meth:`offer` in sequence — the
        batch only vectorizes the MinHash permutations.
        """
        signatures = self.hasher.signatures([text for _, text in items])
        return [
            key
            for (key, _), signature in zip(items, signatures)
            if self.offer_signature(key, signature)
        ]


def deduplicate(
    items: Sequence[Tuple[Hashable, str]],
    threshold: float = DEFAULT_DEDUP_THRESHOLD,
    num_permutations: int = DEFAULT_NUM_PERMUTATIONS,
    seed: int = 0x5EED,
) -> DedupResult:
    """De-duplicate ``(key, text)`` pairs, keeping first occurrences.

    Returns which keys were kept and, for each removed key, the retained
    key it matched.
    """
    dedup = StreamingDeduplicator(
        threshold=threshold, num_permutations=num_permutations, seed=seed
    )
    for key, text in items:
        dedup.offer(key, text)
    return dedup.result
