"""Tokenized w-shingling of Verilog text.

Shingles are overlapping windows of ``w`` whitespace-separated tokens,
computed on comment-stripped, whitespace-normalized text so that purely
cosmetic edits (reindentation, fork comments) do not defeat duplicate
detection — the same normalization VeriGen-style dedup relies on.
"""

from __future__ import annotations

import hashlib
from typing import List, Set

import numpy as np

from repro.utils.textnorm import normalize_whitespace, strip_comments

DEFAULT_SHINGLE_WIDTH = 5


def _tokens(text: str) -> List[str]:
    return normalize_whitespace(strip_comments(text)).split()


def shingles(text: str, width: int = DEFAULT_SHINGLE_WIDTH) -> Set[str]:
    """The set of w-token shingles of ``text``."""
    if width < 1:
        raise ValueError("shingle width must be >= 1")
    tokens = _tokens(text)
    if not tokens:
        return set()
    if len(tokens) <= width:
        return {" ".join(tokens)}
    return {
        " ".join(tokens[i:i + width])
        for i in range(len(tokens) - width + 1)
    }


def _stable_hash64(shingle: str) -> int:
    digest = hashlib.blake2b(shingle.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def shingle_hashes(
    text: str, width: int = DEFAULT_SHINGLE_WIDTH
) -> "np.ndarray":
    """64-bit stable hashes of the shingle set, as a sorted numpy array.

    Hashing to integers lets MinHash permutations run vectorized; sorting
    makes the representation canonical for caching and testing.
    """
    hashed = sorted(_stable_hash64(s) for s in shingles(text, width))
    return np.array(hashed, dtype=np.uint64)
