"""Exact Jaccard similarity between shingle sets."""

from __future__ import annotations

from typing import Set

from repro.dedup.shingle import DEFAULT_SHINGLE_WIDTH, shingles


def jaccard_similarity(a: Set[str], b: Set[str]) -> float:
    """|a ∩ b| / |a ∪ b|; two empty sets are defined as identical (1.0)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def text_jaccard(
    text_a: str, text_b: str, width: int = DEFAULT_SHINGLE_WIDTH
) -> float:
    """Exact Jaccard similarity between two texts' shingle sets."""
    return jaccard_similarity(shingles(text_a, width), shingles(text_b, width))
