"""MinHash/LSH de-duplication (Sec. III-D2 of the paper).

The paper follows VeriGen's recipe: files are represented by MinHash
signatures, banded Locality-Sensitive Hashing buckets likely-similar
pairs, and candidates whose (estimated) Jaccard similarity exceeds 0.85
are treated as duplicates, keeping one representative per cluster.
"""

from repro.dedup.shingle import shingles, shingle_hashes
from repro.dedup.jaccard import jaccard_similarity
from repro.dedup.minhash import MinHasher, MinHashSignature, estimate_jaccard
from repro.dedup.lsh import LSHIndex, choose_bands
from repro.dedup.dedup import DedupResult, StreamingDeduplicator, deduplicate

__all__ = [
    "StreamingDeduplicator",
    "shingles",
    "shingle_hashes",
    "jaccard_similarity",
    "MinHasher",
    "MinHashSignature",
    "estimate_jaccard",
    "LSHIndex",
    "choose_bands",
    "DedupResult",
    "deduplicate",
]
