"""MinHash signatures over shingle-hash sets.

Uses the standard family of universal hash permutations
``h_i(x) = (a_i * x + b_i) mod p`` with the Mersenne prime ``p = 2^31 - 1``.
With ``a, b, x < 2^31`` the product ``a*x + b`` stays below ``2^63``, so the
whole permutation evaluates exactly in vectorized uint64 arithmetic.  The
expected fraction of matching signature components between two documents
equals their Jaccard similarity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dedup.shingle import DEFAULT_SHINGLE_WIDTH, shingle_hashes
from repro.utils.rng import DeterministicRNG

_PRIME = np.uint64((1 << 31) - 1)
DEFAULT_NUM_PERMUTATIONS = 128


@dataclass(frozen=True)
class MinHashSignature:
    """Signature vector for one document."""

    values: np.ndarray  # shape (num_permutations,), dtype uint64

    def __len__(self) -> int:
        return len(self.values)


def estimate_jaccard(a: MinHashSignature, b: MinHashSignature) -> float:
    """Estimated Jaccard similarity = fraction of equal components."""
    if len(a) != len(b):
        raise ValueError("signatures have different permutation counts")
    if len(a) == 0:
        return 1.0
    return float(np.count_nonzero(a.values == b.values)) / len(a)


class MinHasher:
    """Computes MinHash signatures with a fixed, seeded permutation set."""

    def __init__(
        self,
        num_permutations: int = DEFAULT_NUM_PERMUTATIONS,
        seed: int = 0x5EED,
        shingle_width: int = DEFAULT_SHINGLE_WIDTH,
    ) -> None:
        if num_permutations < 1:
            raise ValueError("need at least one permutation")
        rng = DeterministicRNG(seed)
        prime = int(_PRIME)
        self.num_permutations = num_permutations
        self.shingle_width = shingle_width
        self._a = np.array(
            [rng.randint(1, prime - 1) for _ in range(num_permutations)],
            dtype=np.uint64,
        )
        self._b = np.array(
            [rng.randint(0, prime - 1) for _ in range(num_permutations)],
            dtype=np.uint64,
        )

    def signature_of_hashes(self, hashes: np.ndarray) -> MinHashSignature:
        """Signature from precomputed 64-bit shingle hashes."""
        if hashes.size == 0:
            # Empty documents share a canonical all-max signature.
            return MinHashSignature(
                values=np.full(self.num_permutations, _PRIME, dtype=np.uint64)
            )
        x = hashes.astype(np.uint64) % _PRIME
        mins = np.empty(self.num_permutations, dtype=np.uint64)
        for i in range(self.num_permutations):
            mins[i] = ((self._a[i] * x + self._b[i]) % _PRIME).min()
        return MinHashSignature(values=mins)

    def signature(self, text: str) -> MinHashSignature:
        """Signature of raw text (shingling + hashing + permutations)."""
        return self.signature_of_hashes(shingle_hashes(text, self.shingle_width))

    def signatures_of_hashes(self, hash_arrays) -> "list[MinHashSignature]":
        """Batch form of :meth:`signature_of_hashes` over many documents.

        Concatenates all shingle-hash arrays and evaluates each permutation
        once over the whole batch with per-document segment minima
        (``np.minimum.reduceat``).  The arithmetic is the exact same
        ``(a*x + b) mod p`` in uint64, so every returned signature is
        bit-identical to the per-document path — only the Python-level
        loop count drops from ``permutations * documents`` to
        ``permutations``.
        """
        out: "list[MinHashSignature]" = [None] * len(hash_arrays)  # type: ignore[list-item]
        nonempty = [i for i, arr in enumerate(hash_arrays) if arr.size]
        for i, arr in enumerate(hash_arrays):
            if not arr.size:
                out[i] = MinHashSignature(
                    values=np.full(self.num_permutations, _PRIME, dtype=np.uint64)
                )
        if not nonempty:
            return out
        concat = (
            np.concatenate([hash_arrays[i] for i in nonempty]).astype(np.uint64)
            % _PRIME
        )
        sizes = np.array([hash_arrays[i].size for i in nonempty], dtype=np.int64)
        offsets = np.zeros(len(nonempty), dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        mins = np.empty((len(nonempty), self.num_permutations), dtype=np.uint64)
        for p in range(self.num_permutations):
            row = (self._a[p] * concat + self._b[p]) % _PRIME
            mins[:, p] = np.minimum.reduceat(row, offsets)
        for j, i in enumerate(nonempty):
            out[i] = MinHashSignature(values=mins[j].copy())
        return out

    def signatures(self, texts) -> "list[MinHashSignature]":
        """Batch signatures of raw texts; equals ``[signature(t) for t in texts]``."""
        return self.signatures_of_hashes(
            [shingle_hashes(t, self.shingle_width) for t in texts]
        )
