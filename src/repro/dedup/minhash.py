"""MinHash signatures over shingle-hash sets.

Uses the standard family of universal hash permutations
``h_i(x) = (a_i * x + b_i) mod p`` with the Mersenne prime ``p = 2^31 - 1``.
With ``a, b, x < 2^31`` the product ``a*x + b`` stays below ``2^63``, so the
whole permutation evaluates exactly in vectorized uint64 arithmetic.  The
expected fraction of matching signature components between two documents
equals their Jaccard similarity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dedup.shingle import DEFAULT_SHINGLE_WIDTH, shingle_hashes
from repro.utils.rng import DeterministicRNG

_PRIME = np.uint64((1 << 31) - 1)
DEFAULT_NUM_PERMUTATIONS = 128


@dataclass(frozen=True)
class MinHashSignature:
    """Signature vector for one document."""

    values: np.ndarray  # shape (num_permutations,), dtype uint64

    def __len__(self) -> int:
        return len(self.values)


def estimate_jaccard(a: MinHashSignature, b: MinHashSignature) -> float:
    """Estimated Jaccard similarity = fraction of equal components."""
    if len(a) != len(b):
        raise ValueError("signatures have different permutation counts")
    if len(a) == 0:
        return 1.0
    return float(np.count_nonzero(a.values == b.values)) / len(a)


class MinHasher:
    """Computes MinHash signatures with a fixed, seeded permutation set."""

    def __init__(
        self,
        num_permutations: int = DEFAULT_NUM_PERMUTATIONS,
        seed: int = 0x5EED,
        shingle_width: int = DEFAULT_SHINGLE_WIDTH,
    ) -> None:
        if num_permutations < 1:
            raise ValueError("need at least one permutation")
        rng = DeterministicRNG(seed)
        prime = int(_PRIME)
        self.num_permutations = num_permutations
        self.shingle_width = shingle_width
        self._a = np.array(
            [rng.randint(1, prime - 1) for _ in range(num_permutations)],
            dtype=np.uint64,
        )
        self._b = np.array(
            [rng.randint(0, prime - 1) for _ in range(num_permutations)],
            dtype=np.uint64,
        )

    def signature_of_hashes(self, hashes: np.ndarray) -> MinHashSignature:
        """Signature from precomputed 64-bit shingle hashes."""
        if hashes.size == 0:
            # Empty documents share a canonical all-max signature.
            return MinHashSignature(
                values=np.full(self.num_permutations, _PRIME, dtype=np.uint64)
            )
        x = hashes.astype(np.uint64) % _PRIME
        mins = np.empty(self.num_permutations, dtype=np.uint64)
        for i in range(self.num_permutations):
            mins[i] = ((self._a[i] * x + self._b[i]) % _PRIME).min()
        return MinHashSignature(values=mins)

    def signature(self, text: str) -> MinHashSignature:
        """Signature of raw text (shingling + hashing + permutations)."""
        return self.signature_of_hashes(shingle_hashes(text, self.shingle_width))
