"""Banded Locality-Sensitive Hashing over MinHash signatures.

Signatures are split into ``bands`` bands of ``rows`` components; two
documents become candidates if any band hashes identically.  The
probability a pair with Jaccard ``s`` becomes a candidate is
``1 - (1 - s^rows)^bands``; :func:`choose_bands` picks the banding whose
S-curve threshold ``(1/bands)^(1/rows)`` lands nearest the requested
similarity threshold.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterable, List, Set, Tuple

from repro.dedup.minhash import MinHashSignature


def choose_bands(num_permutations: int, threshold: float) -> Tuple[int, int]:
    """Return (bands, rows) dividing ``num_permutations`` evenly, with the
    LSH S-curve inflection closest to ``threshold``."""
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    best: Tuple[float, int, int] = (float("inf"), num_permutations, 1)
    for rows in range(1, num_permutations + 1):
        if num_permutations % rows:
            continue
        bands = num_permutations // rows
        inflection = (1.0 / bands) ** (1.0 / rows)
        score = abs(inflection - threshold)
        if score < best[0]:
            best = (score, bands, rows)
    return best[1], best[2]


class LSHIndex:
    """Insert-then-query candidate index over MinHash signatures."""

    def __init__(self, bands: int, rows: int) -> None:
        if bands < 1 or rows < 1:
            raise ValueError("bands and rows must be positive")
        self.bands = bands
        self.rows = rows
        self._buckets: List[Dict[bytes, List[Hashable]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._signatures: Dict[Hashable, MinHashSignature] = {}
        #: key -> insertion sequence number, for order-stable candidate scans
        self._insert_seq: Dict[Hashable, int] = {}

    def _band_keys(self, signature: MinHashSignature) -> Iterable[bytes]:
        expected = self.bands * self.rows
        if len(signature) != expected:
            raise ValueError(
                f"signature length {len(signature)} != bands*rows {expected}"
            )
        values = signature.values
        for band in range(self.bands):
            start = band * self.rows
            yield values[start:start + self.rows].tobytes()

    def insert(self, key: Hashable, signature: MinHashSignature) -> None:
        if key in self._signatures:
            raise KeyError(f"duplicate key {key!r}")
        self._insert_seq[key] = len(self._signatures)
        self._signatures[key] = signature
        for band, band_key in enumerate(self._band_keys(signature)):
            self._buckets[band][band_key].append(key)

    def candidates(self, signature: MinHashSignature) -> Set[Hashable]:
        """Keys sharing at least one band with ``signature``."""
        found: Set[Hashable] = set()
        for band, band_key in enumerate(self._band_keys(signature)):
            found.update(self._buckets[band].get(band_key, ()))
        return found

    def candidates_in_order(self, signature: MinHashSignature) -> List[Hashable]:
        """:meth:`candidates`, ordered by key insertion.

        Keys are hashable but their *hash-set* iteration order varies with
        ``PYTHONHASHSEED``; scanning candidates in insertion order keeps
        consumers (notably dedup attribution) deterministic across runs.
        """
        found = self.candidates(signature)
        return sorted(found, key=self._insert_seq.__getitem__)

    def __len__(self) -> int:
        return len(self._signatures)

    def signature_of(self, key: Hashable) -> MinHashSignature:
        return self._signatures[key]
