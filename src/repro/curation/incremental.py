"""Incremental curation: grow a curated corpus batch by batch.

A full recuration recomputes signatures and re-parses every historical
file just to admit a few new ones.  :class:`IncrementalCurator` keeps the
engine graph — most importantly the dedup stage's LSH index — alive
between batches, so each :meth:`ingest` costs only the new batch: new
files are filtered, signed, deduplicated *against everything already
kept*, and appended.  The whole curator state checkpoints to a
:class:`repro.engine.CheckpointStore`, so ingestion can resume in a later
process.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.curation.pipeline import (
    CuratedDataset,
    CurationConfig,
    CurationPipeline,
)
from repro.curation.report import FunnelReport, funnel_from_graph
from repro.github.scraper import ScrapedFile


class IncrementalCurator:
    """Stateful curation front end over the execution engine."""

    def __init__(
        self,
        config: Optional[CurationConfig] = None,
        chunk_size: Optional[int] = None,
        executor=None,
    ) -> None:
        self.pipeline = CurationPipeline(
            config, chunk_size=chunk_size, executor=executor
        )
        self.graph = self.pipeline.compile()
        self.kept_files: List[ScrapedFile] = []
        self.batches_ingested = 0

    @property
    def config(self) -> CurationConfig:
        return self.pipeline.config

    def ingest(self, files: Iterable[ScrapedFile]) -> List[ScrapedFile]:
        """Curate one additional batch; returns the batch's survivors.

        Ingesting batches B1..Bn yields exactly the files one full run
        over B1+...+Bn would keep (first occurrence wins in dedup), while
        doing per-batch work only.
        """
        survivors = self.graph.ingest(files)
        self.kept_files.extend(survivors)
        self.batches_ingested += 1
        return survivors

    @property
    def funnel(self) -> FunnelReport:
        """Cumulative funnel over every batch ingested so far."""
        return funnel_from_graph(self.graph)

    def dataset(self, name: str = "FreeSet") -> CuratedDataset:
        """Snapshot the cumulative result as a :class:`CuratedDataset`."""
        return CuratedDataset(
            name=name,
            files=list(self.kept_files),
            funnel=self.funnel,
            license_check=self.config.license_check,
            copyright_check=self.config.copyright_check,
        )

    # -- persistence ------------------------------------------------------

    def save(self, store, tag: str = "curator") -> None:
        """Checkpoint graph state plus the kept-file accumulator.

        Everything goes into one store key so the snapshot is atomic: a
        crash mid-save leaves the previous snapshot intact rather than a
        torn graph/files pair.
        """
        store.save(
            tag,
            {
                "graph": self.graph.checkpoint_state(),
                "kept_files": self.kept_files,
                "batches_ingested": self.batches_ingested,
            },
        )

    def load(self, store, tag: str = "curator") -> bool:
        """Restore a snapshot; returns False when none exists."""
        state = store.load(tag)
        if state is None:
            return False
        self.graph.restore_state(state["graph"])
        self.kept_files = list(state["kept_files"])
        self.batches_ingested = state["batches_ingested"]
        return True
