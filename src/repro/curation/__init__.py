"""Dataset curation pipeline (the FreeSet framework, Sec. III-B..D).

Stages, in the paper's order:

1. **extraction** — Verilog files scraped from license-faceted queries;
2. **license filter** — keep files only from repos with an accepted OSS
   license (a pass-through stage when the scraper already faceted, but
   prior-work policies disable the faceting and rely on this stage);
3. **de-duplication** — MinHash/LSH at Jaccard 0.85;
4. **copyright filter** — file-level header scan for proprietary /
   confidential / all-rights-reserved language;
5. **syntax check** — drop files that fail to parse.

Every stage records in/out counts in a :class:`FunnelReport` (the
Sec. IV-A funnel) and the result is a :class:`CuratedDataset` carrying the
Table I metadata.
"""

from repro.curation.license_filter import LicenseFilter
from repro.curation.copyright_filter import (
    CopyrightFilter,
    DEFAULT_COPYRIGHT_KEYWORDS,
)
from repro.curation.pipeline import (
    CurationConfig,
    CuratedDataset,
    CurationPipeline,
)
from repro.curation.incremental import IncrementalCurator
from repro.curation.report import FunnelReport, FunnelStage

__all__ = [
    "IncrementalCurator",
    "LicenseFilter",
    "CopyrightFilter",
    "DEFAULT_COPYRIGHT_KEYWORDS",
    "CurationConfig",
    "CuratedDataset",
    "CurationPipeline",
    "FunnelReport",
    "FunnelStage",
]
