"""Funnel accounting for the curation pipeline (Sec. IV-A)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class FunnelStage:
    """One pipeline stage's in/out accounting."""

    name: str
    in_count: int
    out_count: int

    @property
    def removed(self) -> int:
        return self.in_count - self.out_count

    @property
    def removal_fraction(self) -> float:
        return self.removed / self.in_count if self.in_count else 0.0


@dataclass
class FunnelReport:
    """Every stage of one curation run, paper-funnel style."""

    stages: List[FunnelStage] = field(default_factory=list)

    def record(self, name: str, in_count: int, out_count: int) -> FunnelStage:
        if in_count < 0 or out_count < 0:
            raise ValueError(
                f"stage {name!r} recorded negative counts "
                f"({in_count} -> {out_count})"
            )
        if out_count > in_count:
            raise ValueError(f"stage {name!r} produced more files than it saw")
        stage = FunnelStage(name=name, in_count=in_count, out_count=out_count)
        self.stages.append(stage)
        return stage

    def stage(self, name: str) -> Optional[FunnelStage]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    @property
    def initial_count(self) -> int:
        return self.stages[0].in_count if self.stages else 0

    @property
    def final_count(self) -> int:
        return self.stages[-1].out_count if self.stages else 0

    def to_text(self) -> str:
        """Render the funnel as an aligned table (the Sec. IV-A series).

        The stage column widens to fit the longest name so custom engine
        stages with long names stay aligned; the default stages keep the
        seed's exact 22-column layout.
        """
        width = max([22] + [len(s.name) + 1 for s in self.stages])
        lines = [
            f"{'stage':<{width}}{'in':>10}{'out':>10}{'removed':>10}{'frac':>8}"
        ]
        for stage in self.stages:
            lines.append(
                f"{stage.name:<{width}}{stage.in_count:>10}{stage.out_count:>10}"
                f"{stage.removed:>10}{stage.removal_fraction:>8.3f}"
            )
        return "\n".join(lines)


def funnel_from_graph(graph) -> FunnelReport:
    """Derive the paper's funnel from an engine run's metrics.

    ``graph`` is a :class:`repro.engine.StageGraph` (duck-typed here to
    keep the report module engine-free): total items fed become the
    ``extracted`` stage, then each stage metric records in order.
    """
    funnel = FunnelReport()
    funnel.record("extracted", graph.items_in, graph.items_in)
    for metric in graph.metrics:
        funnel.record(metric.name, metric.in_count, metric.out_count)
    return funnel
