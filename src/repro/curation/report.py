"""Funnel accounting for the curation pipeline (Sec. IV-A)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class FunnelStage:
    """One pipeline stage's in/out accounting."""

    name: str
    in_count: int
    out_count: int

    @property
    def removed(self) -> int:
        return self.in_count - self.out_count

    @property
    def removal_fraction(self) -> float:
        return self.removed / self.in_count if self.in_count else 0.0


@dataclass
class FunnelReport:
    """Every stage of one curation run, paper-funnel style."""

    stages: List[FunnelStage] = field(default_factory=list)

    def record(self, name: str, in_count: int, out_count: int) -> FunnelStage:
        if out_count > in_count:
            raise ValueError(f"stage {name!r} produced more files than it saw")
        stage = FunnelStage(name=name, in_count=in_count, out_count=out_count)
        self.stages.append(stage)
        return stage

    def stage(self, name: str) -> Optional[FunnelStage]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    @property
    def initial_count(self) -> int:
        return self.stages[0].in_count if self.stages else 0

    @property
    def final_count(self) -> int:
        return self.stages[-1].out_count if self.stages else 0

    def to_text(self) -> str:
        """Render the funnel as an aligned table (the Sec. IV-A series)."""
        lines = [
            f"{'stage':<22}{'in':>10}{'out':>10}{'removed':>10}{'frac':>8}"
        ]
        for stage in self.stages:
            lines.append(
                f"{stage.name:<22}{stage.in_count:>10}{stage.out_count:>10}"
                f"{stage.removed:>10}{stage.removal_fraction:>8.3f}"
            )
        return "\n".join(lines)
