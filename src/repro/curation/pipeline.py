"""The end-to-end curation pipeline producing a curated dataset.

Since the engine refactor, :class:`CurationPipeline` is a thin facade: it
*compiles* a :class:`CurationConfig` into a declarative stage-spec list,
builds a :class:`repro.engine.StageGraph` through the stage registry, and
derives the paper's :class:`FunnelReport` from the engine's per-stage
metrics.  Output (kept files and funnel counts) is identical to the
seed's serial loop; execution is chunked, streamable, and optionally
parallel.

Example (runnable; the same block in ``docs/architecture.md`` is
executed by ``tools/check_docs.py``)::

    from repro.curation import CurationConfig, CurationPipeline
    from repro.github import (
        GitHubScraper, SimulatedGitHubAPI, WorldConfig, generate_world,
    )

    api = SimulatedGitHubAPI(generate_world(WorldConfig(n_repos=30)))
    dataset = CurationPipeline(CurationConfig()).run(
        GitHubScraper(api).scrape()
    )
    print(dataset.funnel.to_text())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.curation.report import FunnelReport, funnel_from_graph
from repro.dedup.dedup import DEFAULT_DEDUP_THRESHOLD
from repro.github.scraper import ScrapedFile


@dataclass
class CurationConfig:
    """Which stages run and with what parameters.

    The defaults are the FreeSet policy; prior-work dataset policies are
    expressed by switching stages off (see
    :mod:`repro.core.comparison`).
    """

    license_check: bool = True
    allow_unlicensed: bool = False
    dedup: bool = True
    dedup_threshold: float = DEFAULT_DEDUP_THRESHOLD
    copyright_check: bool = True
    syntax_check: bool = True
    #: drop files longer than this many characters (CodeV-style policies
    #: use a small cap; FreeSet keeps everything -> None)
    max_file_chars: Optional[int] = None
    seed: int = 0x5EED

    def stage_specs(self) -> List[Tuple[str, Mapping]]:
        """The declarative stage list this config compiles to."""
        specs: List[Tuple[str, Mapping]] = []
        if self.license_check:
            specs.append(
                ("license_filter", {"allow_unlicensed": self.allow_unlicensed})
            )
        if self.max_file_chars is not None:
            specs.append(("length_cap", {"max_chars": self.max_file_chars}))
        if self.dedup:
            specs.append(
                ("dedup", {"threshold": self.dedup_threshold, "seed": self.seed})
            )
        if self.copyright_check:
            specs.append(("copyright_filter", {}))
        if self.syntax_check:
            specs.append(("syntax_check", {}))
        return specs


@dataclass
class CuratedDataset:
    """The pipeline output plus the metadata Table I reports."""

    name: str
    files: List[ScrapedFile] = field(default_factory=list)
    funnel: FunnelReport = field(default_factory=FunnelReport)
    structure: str = "Continual Pre-Training"
    augmented: bool = False
    open_source: bool = True
    license_check: bool = True
    copyright_check: bool = True
    #: lazily computed by :attr:`size_bytes`; Table I benchmarks read the
    #: size per row, so re-encoding the corpus on every access is O(n^2)
    _size_bytes: Optional[int] = field(
        default=None, repr=False, compare=False
    )

    @property
    def rows(self) -> int:
        return len(self.files)

    @property
    def size_bytes(self) -> int:
        if self._size_bytes is None:
            self._size_bytes = sum(
                len(f.content.encode("utf-8")) for f in self.files
            )
        return self._size_bytes

    def texts(self) -> List[str]:
        return [f.content for f in self.files]

    def char_lengths(self) -> List[int]:
        return [len(f.content) for f in self.files]


class CurationPipeline:
    """Runs the staged curation over scraped files with funnel accounting.

    ``chunk_size`` and ``executor`` tune the underlying engine run;
    the defaults stream serially in chunks and match the seed pipeline's
    output exactly.  ``executor`` may be an instance or a spec string
    (``"serial"``, ``"pool"``, ``"cluster"``, ``"auto"``) resolved via
    :func:`repro.engine.make_executor`; a string-built executor is owned
    by :meth:`run` and closed when the run finishes.
    """

    def __init__(
        self,
        config: Optional[CurationConfig] = None,
        chunk_size: Optional[int] = None,
        executor=None,
    ) -> None:
        self.config = config or CurationConfig()
        self.chunk_size = chunk_size
        self.executor = executor

    def compile(self, executor=None):
        """Build the engine :class:`StageGraph` for this configuration."""
        # Imported lazily: repro.engine's stages import curation filters,
        # so a top-level import here would be circular.
        from repro.engine import (
            DEFAULT_CHUNK_SIZE,
            StageGraph,
            build_stages,
            make_executor,
        )

        chunk_size = (
            self.chunk_size if self.chunk_size is not None else DEFAULT_CHUNK_SIZE
        )
        spec = executor if executor is not None else self.executor
        resolved = make_executor(spec) if isinstance(spec, str) else spec
        return StageGraph(
            build_stages(self.config.stage_specs()),
            chunk_size=chunk_size,
            executor=resolved,
        )

    def run(
        self, files: Iterable[ScrapedFile], name: str = "FreeSet"
    ) -> CuratedDataset:
        graph = self.compile()
        try:
            with obs.run_capture("curation", dataset=name):
                current = graph.run(files)
                # Funnel counters mirror the FunnelReport rows so a traced
                # curation shows up in the same registry as eval runs.
                obs.count("curation.files_in", graph.items_in)
                obs.count("curation.files_kept", len(current))
                for stat in graph.stage_stats():
                    obs.count(f"curation.{stat.stage}.removed", stat.removed)
        finally:
            if isinstance(self.executor, str):
                # compile() built this run's executor from the spec
                # string; nobody else holds it, so release it here.
                graph.executor.close()
        return CuratedDataset(
            name=name,
            files=current,
            funnel=funnel_from_graph(graph),
            license_check=self.config.license_check,
            copyright_check=self.config.copyright_check,
        )
