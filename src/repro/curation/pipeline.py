"""The end-to-end curation pipeline producing a curated dataset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.curation.copyright_filter import CopyrightFilter
from repro.curation.license_filter import LicenseFilter
from repro.curation.report import FunnelReport
from repro.dedup import deduplicate
from repro.dedup.dedup import DEFAULT_DEDUP_THRESHOLD
from repro.github.scraper import ScrapedFile
from repro.verilog import check_syntax


@dataclass
class CurationConfig:
    """Which stages run and with what parameters.

    The defaults are the FreeSet policy; prior-work dataset policies are
    expressed by switching stages off (see
    :mod:`repro.core.comparison`).
    """

    license_check: bool = True
    allow_unlicensed: bool = False
    dedup: bool = True
    dedup_threshold: float = DEFAULT_DEDUP_THRESHOLD
    copyright_check: bool = True
    syntax_check: bool = True
    #: drop files longer than this many characters (CodeV-style policies
    #: use a small cap; FreeSet keeps everything -> None)
    max_file_chars: Optional[int] = None
    seed: int = 0x5EED


@dataclass
class CuratedDataset:
    """The pipeline output plus the metadata Table I reports."""

    name: str
    files: List[ScrapedFile] = field(default_factory=list)
    funnel: FunnelReport = field(default_factory=FunnelReport)
    structure: str = "Continual Pre-Training"
    augmented: bool = False
    open_source: bool = True
    license_check: bool = True
    copyright_check: bool = True

    @property
    def rows(self) -> int:
        return len(self.files)

    @property
    def size_bytes(self) -> int:
        return sum(len(f.content.encode("utf-8")) for f in self.files)

    def texts(self) -> List[str]:
        return [f.content for f in self.files]

    def char_lengths(self) -> List[int]:
        return [len(f.content) for f in self.files]


class CurationPipeline:
    """Runs the staged curation over scraped files with funnel accounting."""

    def __init__(self, config: Optional[CurationConfig] = None) -> None:
        self.config = config or CurationConfig()

    def run(
        self, files: Sequence[ScrapedFile], name: str = "FreeSet"
    ) -> CuratedDataset:
        config = self.config
        funnel = FunnelReport()
        current: List[ScrapedFile] = list(files)
        funnel.record("extracted", len(current), len(current))

        if config.license_check:
            before = len(current)
            current = LicenseFilter(
                allow_unlicensed=config.allow_unlicensed
            ).apply(current)
            funnel.record("license_filter", before, len(current))

        if config.max_file_chars is not None:
            before = len(current)
            current = [
                f for f in current if len(f.content) <= config.max_file_chars
            ]
            funnel.record("length_cap", before, len(current))

        if config.dedup:
            before = len(current)
            result = deduplicate(
                [(f.file_id, f.content) for f in current],
                threshold=config.dedup_threshold,
                seed=config.seed,
            )
            kept = set(result.kept_keys)
            current = [f for f in current if f.file_id in kept]
            funnel.record("dedup", before, len(current))

        if config.copyright_check:
            before = len(current)
            current = CopyrightFilter().apply(current)
            funnel.record("copyright_filter", before, len(current))

        if config.syntax_check:
            before = len(current)
            current = [f for f in current if check_syntax(f.content).ok]
            funnel.record("syntax_check", before, len(current))

        return CuratedDataset(
            name=name,
            files=current,
            funnel=funnel,
            license_check=config.license_check,
            copyright_check=config.copyright_check,
        )
