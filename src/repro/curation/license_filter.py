"""Repository-license filter (Sec. III-C2).

Keeps only files whose repository carries one of the accepted open-source
licenses; unlicensed repositories are "a gray area in which they could
potentially be part of a copyrighted code-base" and are dropped.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.github.licenses import OPEN_SOURCE_LICENSE_KEYS
from repro.github.scraper import ScrapedFile


class LicenseFilter:
    """Filters scraped files by repository license."""

    def __init__(
        self,
        allowed: Optional[Sequence[str]] = None,
        allow_unlicensed: bool = False,
    ) -> None:
        self.allowed = frozenset(
            allowed if allowed is not None else OPEN_SOURCE_LICENSE_KEYS
        )
        self.allow_unlicensed = allow_unlicensed

    def accepts(self, record: ScrapedFile) -> bool:
        if record.license_key is None:
            return self.allow_unlicensed
        return record.license_key in self.allowed

    def apply(self, files: Iterable[ScrapedFile]) -> List[ScrapedFile]:
        return [record for record in files if self.accepts(record)]
