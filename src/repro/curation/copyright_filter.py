"""File-level copyright filter (Sec. III-C2).

Scans each file's *comment text* for language indicating private
copyright — the keyword families the paper lists are "proprietary",
"confidential", and "all rights reserved".  Only comments are inspected:
a module named ``proprietary_bus_bridge`` must not trip the filter, while
a header comment reading "CONFIDENTIAL — all rights reserved" must.

A file is flagged when either (a) any *strong* phrase appears, or (b) a
copyright declaration co-occurs with a restriction keyword — matching the
paper's description of keyword *combinations*.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: Phrases that alone indicate private copyright.
DEFAULT_COPYRIGHT_KEYWORDS: Tuple[str, ...] = (
    "all rights reserved",
    "proprietary",
    "confidential",
    "do not distribute",
    "unauthorized copying",
    "trade secret",
)

#: A copyright declaration plus any of these restriction words also flags.
_DECLARATION_RE = re.compile(r"copyright|\(c\)|©", re.IGNORECASE)
_RESTRICTION_WORDS: Tuple[str, ...] = (
    "property of",
    "written consent",
    "strictly prohibited",
    "internal use only",
)

_LINE_COMMENT_RE = re.compile(r"//([^\n]*)")
_BLOCK_COMMENT_RE = re.compile(r"/\*(.*?)\*/", re.DOTALL)


def extract_comment_text(source: str, header_lines: int = 0) -> str:
    """All comment text in ``source`` (optionally only the first N lines).

    ``header_lines=0`` scans the whole file; the paper checks "the header
    comments of individual files", and the pipeline default scans the
    first 40 lines, which covers multi-paragraph legal headers while
    staying cheap on mega-files.
    """
    region = source
    if header_lines > 0:
        region = "\n".join(source.splitlines()[:header_lines])
    parts: List[str] = []
    parts.extend(m.group(1) for m in _LINE_COMMENT_RE.finditer(region))
    parts.extend(m.group(1) for m in _BLOCK_COMMENT_RE.finditer(region))
    # An unterminated block comment at the top of the region still counts.
    open_block = region.rfind("/*")
    if open_block != -1 and region.find("*/", open_block) == -1:
        parts.append(region[open_block + 2:])
    return "\n".join(parts)


@dataclass
class CopyrightVerdict:
    """Why a file was (or was not) flagged."""

    flagged: bool
    matched_keywords: List[str]


class CopyrightFilter:
    """Keyword-combination scan over file comments."""

    def __init__(
        self,
        keywords: Sequence[str] = DEFAULT_COPYRIGHT_KEYWORDS,
        header_lines: int = 40,
    ) -> None:
        self.keywords = tuple(k.lower() for k in keywords)
        self.header_lines = header_lines

    def inspect(self, source: str) -> CopyrightVerdict:
        comments = extract_comment_text(source, self.header_lines).lower()
        if not comments:
            return CopyrightVerdict(flagged=False, matched_keywords=[])
        matched = [k for k in self.keywords if k in comments]
        if matched:
            return CopyrightVerdict(flagged=True, matched_keywords=matched)
        if _DECLARATION_RE.search(comments):
            restrictions = [w for w in _RESTRICTION_WORDS if w in comments]
            if restrictions:
                return CopyrightVerdict(
                    flagged=True,
                    matched_keywords=["copyright"] + restrictions,
                )
        return CopyrightVerdict(flagged=False, matched_keywords=[])

    def is_clean(self, source: str) -> bool:
        return not self.inspect(source).flagged

    def apply(self, files: Iterable) -> List:
        """Keep only files whose content passes the scan.

        Works on anything with a ``content`` attribute (ScrapedFile,
        RepoFile).
        """
        return [record for record in files if self.is_clean(record.content)]
