"""repro.testing — deterministic test substrates shipped with the library.

Currently one module: :mod:`repro.testing.faults`, the fault-injection
registry that makes every recovery path in the repo directly drivable
(``REPRO_FAULTS=point:kind:nth``) instead of relying on ``os._exit``
races.  It lives in the installed package, not under ``tests/``, because
production code hosts the fault *points* and CI smoke runs arm them from
the environment.
"""

from repro.testing import faults

__all__ = ["faults"]
