"""Deterministic fault injection: named points, armed on demand.

Recovery paths used to be testable only through bespoke tricks — a
stage that calls ``os._exit`` when it sees item 13, a monkeypatched
``CheckpointStore.save`` that kills the process after N calls — each
one a small race wired to incidental data.  This module replaces those
with a first-class switchboard:

* Production code hosts **fault points**: a call to :func:`fire` with a
  stable dotted name (``checkpoint.save``, ``cluster.send``,
  ``cluster.recv``, ``cluster.worker.lease``, ``pool.chunk``,
  ``sim.cache.load``, ``service.executor.<name>``).  Unarmed, a point
  costs one dict lookup and is a no-op.
* Tests (or CI smoke runs) **arm** faults — programmatically via
  :func:`arm` or from the environment::

      REPRO_FAULTS=point:kind:nth[:once_marker][,point:kind:nth...]

  The fault fires on the ``nth`` activation of the point *in that
  process* (``nth=0`` fires on every activation), then disarms.  The
  optional ``once_marker`` is a filesystem path used as a cross-process
  once-gate: the first process to reach the trigger atomically creates
  the marker and fires; everyone else skips — which is how "exactly one
  pool/cluster worker dies, once" is expressed without races.

Kinds with built-in behavior: ``raise`` (raise :class:`InjectedFault`,
a :class:`~repro.errors.TransientError`, so retry policies classify it
as retryable), ``exit`` (hard ``os._exit(23)`` — the recognizable
injected-death exit code), ``hang`` (sleep for an hour, for heartbeat/
timeout paths).  Any other kind is *site-interpreted*: :func:`fire`
returns the kind string and the hosting code enacts it (e.g.
``checkpoint.save`` treats ``torn`` as "corrupt the written snapshot").

Environment arming is re-synced whenever ``REPRO_FAULTS`` changes, so
``monkeypatch.setenv`` works mid-process, and pool/cluster workers —
which inherit the environment — parse their own copy with their own
activation counters.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.errors import TransientError

__all__ = [
    "ENV_VAR",
    "EXIT_CODE",
    "InjectedFault",
    "arm",
    "armed",
    "check",
    "disarm",
    "fire",
]

ENV_VAR = "REPRO_FAULTS"

#: the process exit code of an injected ``exit`` fault, so a test can
#: tell an injected death from a genuine crash
EXIT_CODE = 23

#: how long an injected ``hang`` sleeps (heartbeat timeouts reap it
#: long before this elapses)
_HANG_S = 3600.0


class InjectedFault(TransientError):
    """The error an armed ``raise`` fault throws at its point.

    Subclasses :class:`~repro.errors.TransientError`, so the default
    :class:`~repro.engine.policy.RetryPolicy` classifies an injected
    crash as retryable — which is exactly what the recovery tests are
    exercising.
    """

    def __init__(self, point: str) -> None:
        self.point = point
        super().__init__(f"injected fault at {point!r}")


@dataclass
class _Fault:
    point: str
    kind: str
    nth: int  # 0 = every activation
    once_marker: Optional[str] = None
    from_env: bool = False
    fired: bool = False


#: armed faults by point name (env- and program-armed together)
_armed: Dict[str, List[_Fault]] = {}
#: per-point activation counters for this process
_hits: Dict[str, int] = {}
#: the raw REPRO_FAULTS string the current env arming was parsed from
_env_raw: Optional[str] = None


def arm(
    point: str,
    kind: str,
    nth: int = 1,
    once_marker: Optional[str] = None,
) -> None:
    """Arm ``kind`` at ``point``, firing on the ``nth`` activation.

    ``nth=0`` fires on every activation (until :func:`disarm`).
    ``once_marker`` makes the fault a cross-process once-gate: it only
    fires if it can atomically create that file.
    """
    if nth < 0:
        raise ValueError(f"nth must be >= 0, got {nth}")
    _armed.setdefault(point, []).append(
        _Fault(point=point, kind=kind, nth=nth, once_marker=once_marker)
    )


def disarm(point: Optional[str] = None) -> None:
    """Drop armed faults (all of them when ``point`` is None) and reset
    activation counters.  Environment-armed faults are dropped too; they
    re-arm only if ``REPRO_FAULTS`` changes afterwards."""
    global _env_raw
    if point is None:
        _armed.clear()
        _hits.clear()
        _env_raw = os.environ.get(ENV_VAR)  # treat current env as seen
        return
    _armed.pop(point, None)
    _hits.pop(point, None)


def armed() -> Dict[str, List[str]]:
    """Live summary (point -> ["kind@nth", ...]) for diagnostics."""
    _sync_env()
    return {
        point: [f"{f.kind}@{f.nth}" for f in faults if not f.fired]
        for point, faults in _armed.items()
        if any(not f.fired for f in faults)
    }


def _parse_env(raw: str) -> List[_Fault]:
    faults: List[_Fault] = []
    for spec in raw.split(","):
        spec = spec.strip()
        if not spec:
            continue
        parts = spec.split(":")
        if len(parts) < 3:
            raise ValueError(
                f"bad {ENV_VAR} entry {spec!r} "
                "(expected point:kind:nth[:once_marker])"
            )
        point, kind, nth = parts[0], parts[1], parts[2]
        marker = ":".join(parts[3:]) or None
        try:
            n = int(nth)
        except ValueError:
            raise ValueError(
                f"bad {ENV_VAR} entry {spec!r}: nth {nth!r} is not an "
                "integer"
            ) from None
        faults.append(
            _Fault(point=point, kind=kind, nth=n, once_marker=marker,
                   from_env=True)
        )
    return faults


def _sync_env() -> None:
    """Re-arm from ``REPRO_FAULTS`` when the variable changed.

    Program-armed faults survive; previous env-armed ones are replaced
    wholesale, and activation counters reset for the affected points so
    ``nth`` counts from the moment of arming.
    """
    global _env_raw
    raw = os.environ.get(ENV_VAR)
    if raw == _env_raw:
        return
    _env_raw = raw
    for point in list(_armed):
        kept = [f for f in _armed[point] if not f.from_env]
        if kept:
            _armed[point] = kept
        else:
            del _armed[point]
    if raw:
        for fault in _parse_env(raw):
            _hits.pop(fault.point, None)
            _armed.setdefault(fault.point, []).append(fault)


def _take_marker(path: str) -> bool:
    """Atomically create the once-gate; False when someone else did."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False  # unreachable marker dir: never fire
    os.close(fd)
    return True


def check(point: str) -> Optional[str]:
    """Activate ``point``; return the armed kind when a fault fires.

    Each call counts one activation.  A fault whose ``nth`` matches (or
    is 0) fires — subject to its once-marker — and single-shot faults
    disarm after firing.  Returns None (the overwhelmingly common case)
    when nothing fires; the caller enacts the kind otherwise.
    """
    _sync_env()
    faults = _armed.get(point)
    if not faults:
        return None
    hits = _hits.get(point, 0) + 1
    _hits[point] = hits
    for fault in faults:
        if fault.fired:
            continue
        if fault.nth != 0 and fault.nth != hits:
            continue
        if fault.once_marker is not None and not _take_marker(
            fault.once_marker
        ):
            if fault.nth != 0:
                fault.fired = True  # trigger consumed by another process
            continue
        if fault.nth != 0:
            fault.fired = True
        return fault.kind
    return None


def fire(point: str) -> Optional[str]:
    """Activate ``point`` and enact built-in kinds.

    ``raise`` raises :class:`InjectedFault`, ``exit`` calls
    ``os._exit(EXIT_CODE)``, ``hang`` sleeps.  Site-interpreted kinds
    (anything else) are returned for the hosting code to enact; None
    means nothing fired.  Every firing is counted (``faults.fired``)
    and evented before the action, so even an ``exit`` leaves a trace
    in worker-side buffers already shipped home.
    """
    kind = check(point)
    if kind is None:
        return None
    obs.count("faults.fired")
    obs.event("faults.fired", point=point, kind=kind)
    if kind == "raise":
        raise InjectedFault(point)
    if kind == "exit":
        os._exit(EXIT_CODE)
    if kind == "hang":
        time.sleep(_HANG_S)
        return kind
    return kind
