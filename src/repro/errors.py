"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TransientError(ReproError):
    """A failure that is expected to succeed on retry.

    Marker base for errors the default
    :class:`repro.engine.policy.RetryPolicy` classifies as retryable:
    injected faults, lost connections, workers that died mid-chunk.
    Subsystems raise subclasses of this (or list their own types in a
    policy's ``retryable``) so retry classification lives in one place
    instead of per-call-site ``except`` tuples.
    """


class ConfigError(ReproError):
    """An environment variable or config value failed validation.

    Always names the offending variable and the accepted range, so a
    bad ``REPRO_*`` setting fails at construction with a one-line
    message instead of a bare ``ValueError`` deep inside a subsystem.
    """


class PlanInterrupted(ReproError):
    """A run was stopped cooperatively at a checkpoint boundary.

    Raised by :meth:`repro.evalkit.EvalPlan.run` when its ``stop`` hook
    returns True between checkpoint blocks: everything completed so far
    is saved, so the run can resume from the same store/tag.  The
    evaluation service maps this to the ``resumable`` job state on
    drain/cancel.
    """


class VerilogError(ReproError):
    """Base class for Verilog front-end errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        if line:
            message = f"{message} (line {line}, col {col})"
        super().__init__(message)


class LexError(VerilogError):
    """Raised when the lexer encounters an illegal character sequence."""


class ParseError(VerilogError):
    """Raised when the parser cannot derive a valid construct."""


class ElaborationError(ReproError):
    """Raised when a parsed design cannot be elaborated for simulation."""


class SimulationError(ReproError):
    """Raised when simulation fails (oscillation, missing signal, ...)."""


class CurationError(ReproError):
    """Raised by the dataset curation pipeline."""


class GitHubAPIError(ReproError):
    """Raised by the simulated GitHub API (rate limits, bad queries)."""

    def __init__(self, message: str, status: int = 400) -> None:
        self.status = status
        super().__init__(message)


class TrainingError(ReproError):
    """Raised when language-model training is misconfigured."""


class EvaluationError(ReproError):
    """Raised by the benchmark harnesses."""
