"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class VerilogError(ReproError):
    """Base class for Verilog front-end errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        if line:
            message = f"{message} (line {line}, col {col})"
        super().__init__(message)


class LexError(VerilogError):
    """Raised when the lexer encounters an illegal character sequence."""


class ParseError(VerilogError):
    """Raised when the parser cannot derive a valid construct."""


class ElaborationError(ReproError):
    """Raised when a parsed design cannot be elaborated for simulation."""


class SimulationError(ReproError):
    """Raised when simulation fails (oscillation, missing signal, ...)."""


class CurationError(ReproError):
    """Raised by the dataset curation pipeline."""


class GitHubAPIError(ReproError):
    """Raised by the simulated GitHub API (rate limits, bad queries)."""

    def __init__(self, message: str, status: int = 400) -> None:
        self.status = status
        super().__init__(message)


class TrainingError(ReproError):
    """Raised when language-model training is misconfigured."""


class EvaluationError(ReproError):
    """Raised by the benchmark harnesses."""
