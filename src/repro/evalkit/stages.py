"""The four engine stages an :class:`~repro.evalkit.EvalPlan` compiles to.

Stream shape::

    specs -> eval_expand -> eval_generate -> eval_check -> eval_aggregate

``eval_expand`` runs inline (it needs the task tables and is trivial);
``eval_generate`` and ``eval_check`` are parallel-safe pure functions of
the record, so the graph fuses them into one pooled phase with the
engine's order-preserving merge; ``eval_aggregate`` is the stateful sink
whose state — every checked record so far — is exactly what a
checkpoint needs to resume a killed run mid-problem.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro import obs
from repro.engine import MapStage, Stage, StatefulStage, register_stage
from repro.evalkit.records import SampleRecord
from repro.llm.model import LanguageModel
from repro.llm.sampler import GenerationConfig
from repro.sim import cache as sim_cache


@register_stage("eval_expand")
class ExpandStage(Stage):
    """Fill prompt and fork seed per spec; drop samples the task skips."""

    name = "eval_expand"
    # Inline: needs the task tables (problem sets, corpora) and is cheap,
    # so shipping them to workers for this stage would be pure overhead.
    parallel_safe = False

    def __init__(self, tasks: Mapping[str, Any]) -> None:
        self.tasks = dict(tasks)

    def process(self, chunk: Sequence[SampleRecord]) -> List[SampleRecord]:
        out: List[SampleRecord] = []
        for record in chunk:
            expanded = self.tasks[record.task_id].expand(record)
            if expanded is not None:
                out.append(expanded)
        return out


@register_stage("eval_generate")
class GenerationStage(MapStage):
    """Sample one completion per record at the record's seed.

    Pure given the record (n-gram decoding is deterministic per seed), so
    it is parallel-safe and fuses with checking; the executor ships the
    model table once per phase and workers cache the deserialized stages.
    """

    name = "eval_generate"
    parallel_safe = True

    def __init__(self, models: Mapping[str, LanguageModel]) -> None:
        self.models = dict(models)
        self._configs: Dict[Any, GenerationConfig] = {}
        #: encoded-prompt cache: the pass@k protocol samples every prompt
        #: n_samples x len(temperatures) times, the serial loop re-encoded
        #: it each time (worker-local; not part of the pickled stage)
        self._prompt_tokens: Dict[Any, List[int]] = {}

    def _config(self, record: SampleRecord) -> GenerationConfig:
        # Hoisted out of the sample loop: one config per protocol point
        # rather than one per generated sample.
        key = (record.temperature, record.max_new_tokens)
        config = self._configs.get(key)
        if config is None:
            config = GenerationConfig(
                temperature=record.temperature,
                max_new_tokens=record.max_new_tokens,
                stop_strings=("endmodule",),
            )
            self._configs[key] = config
        return config

    def map_item(self, record: SampleRecord) -> SampleRecord:
        model = self.models[record.model_name]
        # Keyed by the prompt text itself (tasks share one string object
        # per unit, so hashing is cheap): a task whose prompt varies per
        # sample must never see another sample's tokens.
        key = (record.model_name, record.prompt)
        tokens = self._prompt_tokens.get(key)
        if tokens is None:
            if len(self._prompt_tokens) >= 4096:
                self._prompt_tokens.clear()
            tokens = model.encode_prompt(record.prompt)
            self._prompt_tokens[key] = tokens
        with obs.span(
            "eval.generate",
            model=record.model_name,
            unit=record.unit_id,
            sample=record.sample_index,
        ):
            record.completion = model.generate(
                record.prompt,
                self._config(record),
                seed=record.seed,
                prompt_tokens=tokens,
            )
        return record

    def __getstate__(self):
        # Worker processes rebuild their own caches; shipping them would
        # bloat the per-phase stage payload.
        state = self.__dict__.copy()
        state["_prompt_tokens"] = {}
        return state


@register_stage("eval_check")
class CheckStage(MapStage):
    """Score each completion via its task's checker (the hot stage).

    Chunks are checked *per task, per chunk* rather than per record:
    when a checker exposes ``check_batch`` (see
    :class:`~repro.evalkit.tasks.PassAtKChecker`), all of the chunk's
    records for that task are handed over together, which lets pass@k
    candidates of one problem simulate **in lockstep** — one
    lane-parallel run per group of structurally compatible candidates —
    before the pool fans the chunks out.  Checkers without a batch entry
    point keep the per-record ``check`` path; either way the output is
    1:1 and order-preserving, with verdicts identical to a per-record
    loop.

    Captures the active :mod:`repro.sim.cache` directory and the active
    lane-representation pin
    (:func:`repro.sim.batch.configured_lane_representation`) at
    construction and re-activates both after unpickling, so process-pool
    workers share the run's persistent compile cache (golden artifacts,
    duplicate candidate elaborations, and lockstep grouping digests hit
    disk instead of being rederived) *and* pick the same lane backend —
    shape digests are keyed by the pin, so a worker on a different pin
    would group (and cache) candidates differently — even under executor
    start methods that do not inherit the parent's environment.  The
    resolved CEGIS checking configuration
    (:func:`repro.vereval.cegis.active_config`) is captured and re-applied
    the same way, so every worker renders the same verdict semantics the
    coordinator fingerprinted.
    """

    name = "eval_check"
    parallel_safe = True

    def __init__(self, checkers: Mapping[str, Any],
                 cache_dir: str = None) -> None:
        from repro.sim.batch import configured_lane_representation
        from repro.vereval import cegis

        self.checkers = dict(checkers)
        self.cache_dir = (
            cache_dir if cache_dir is not None else sim_cache.cache_dir()
        )
        if self.cache_dir:
            sim_cache.configure(self.cache_dir)
        self.lane_representation = configured_lane_representation()
        self.cegis_config = cegis.active_config()

    def map_item(self, record: SampleRecord) -> SampleRecord:
        return self.checkers[record.task_id].check(record)

    @staticmethod
    def _note_candidate(record: SampleRecord) -> None:
        # One zero-duration trace event + one counter per verdict: the
        # per-candidate accounting the acceptance check compares against
        # the scalar bookkeeping.  Same call under the batched and the
        # per-record path, so both executors and both check paths emit
        # identical per-candidate streams.
        obs.event(
            "eval.candidate",
            task=record.task_id,
            unit=record.unit_id,
            sample=record.sample_index,
            passed=record.passed,
            reason=record.failure_reason,
        )
        obs.count("eval.candidates")
        if record.passed:
            obs.count("eval.candidates_passed")

    def process(self, chunk: Sequence[SampleRecord]) -> List[SampleRecord]:
        by_task: Dict[str, List[int]] = {}
        for index, record in enumerate(chunk):
            by_task.setdefault(record.task_id, []).append(index)
        results: List[SampleRecord] = [None] * len(chunk)  # type: ignore
        for task_id, indices in by_task.items():
            checker = self.checkers[task_id]
            check_batch = getattr(checker, "check_batch", None)
            with obs.span(
                "eval.check_chunk", task=task_id, records=len(indices)
            ):
                if check_batch is not None:
                    checked = check_batch([chunk[i] for i in indices])
                    for index, record in zip(indices, checked):
                        results[index] = record
                        self._note_candidate(record)
                else:
                    for index in indices:
                        record = checker.check(chunk[index])
                        results[index] = record
                        self._note_candidate(record)
        return results

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.cache_dir:
            sim_cache.configure(self.cache_dir)
        if getattr(self, "lane_representation", None) is not None:
            from repro.sim.batch import configure_lane_representation

            configure_lane_representation(self.lane_representation)
        if getattr(self, "cegis_config", None) is not None:
            from repro.vereval import cegis

            cegis.configure(self.cegis_config)


@register_stage("eval_aggregate")
class AggregateStage(StatefulStage):
    """Order-preserving sink collecting every checked record.

    Its ``state_dict`` is the run's progress payload: restoring it (plus
    the graph's ``items_in`` counter) resumes an interrupted plan exactly
    where the last checkpoint left off.
    """

    name = "eval_aggregate"

    def __init__(self) -> None:
        self.records: List[SampleRecord] = []
        #: transient streaming hook — called as ``on_records(new, total)``
        #: after each chunk lands; not part of the checkpoint payload, so
        #: a resumed run re-attaches its own observer
        self.on_records = None

    def reset(self) -> None:
        self.records = []

    def process(self, chunk: Sequence[SampleRecord]) -> List[SampleRecord]:
        self.records.extend(chunk)
        if self.on_records is not None:
            self.on_records(list(chunk), len(self.records))
        return list(chunk)

    def state_dict(self) -> List[SampleRecord]:
        return list(self.records)

    def load_state(self, state: List[SampleRecord]) -> None:
        self.records = list(state)
