"""Evaluation tasks: what to ask a model and how to score the answers.

An :class:`EvalTask` declares one benchmark protocol as data the engine
can execute: it enumerates bare sample specs, expands each with its
prompt and :class:`~repro.utils.rng.DeterministicRNG` fork seed (the
exact chains the seed-era serial harnesses used, so results are
numerically identical), provides a picklable *checker* that the engine
fans across the process pool, and aggregates the checked records into
the benchmark's reporting object.

Two implementations cover the paper's evaluations:

* :class:`PassAtKTask` — mini-VerilogEval functional correctness
  (Table II), aggregating to :class:`~repro.vereval.EvalResult`;
* :class:`CopyrightTask` — the infringement benchmark (Fig. 3),
  aggregating to :class:`~repro.copyright.ViolationReport`.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.copyright.benchmark import (
    CopyrightBenchmark,
    PromptResult,
    ViolationReport,
)
from repro.copyright.prompts import build_prompt
from repro.utils.rng import DeterministicRNG
from repro.vereval.harness import (
    EvalConfig,
    EvalResult,
    ProblemOutcome,
    check_candidate_source,
    check_candidates_lockstep,
)
from repro.vereval.passk import mean_pass_at_k
from repro.vereval.problems import EvalProblem
from repro.evalkit.records import SampleRecord


class EvalTask:
    """Protocol for one benchmark wired through the engine.

    Implementations must be deterministic: ``specs`` and ``expand`` may
    depend only on construction arguments and the model name, so a
    resumed run re-derives the exact stream a fresh run would see.
    """

    task_id: str

    def spec_count(self, model_name: str) -> int:
        """Number of specs :meth:`specs` yields (resume bookkeeping)."""
        raise NotImplementedError

    def protocol_fingerprint(self) -> str:
        """Digest of everything that shapes this task's sample stream.

        Two tasks with equal fingerprints must produce identical specs,
        prompts, and seeds — it is what stops a checkpoint taken under
        one protocol from silently resuming under another.
        """
        raise NotImplementedError

    def specs(self, model_name: str) -> Iterator[SampleRecord]:
        """Bare sample records in canonical stream order."""
        raise NotImplementedError

    def expand(self, record: SampleRecord) -> Optional[SampleRecord]:
        """Fill prompt + seed; return None to drop the sample."""
        raise NotImplementedError

    def checker(self) -> Any:
        """A picklable object with ``check(record) -> record``."""
        raise NotImplementedError

    def aggregate(self, model_name: str, records: Sequence[SampleRecord]):
        """Fold checked records into the task's reporting object."""
        raise NotImplementedError

    def result_json(self, result: Any) -> Dict[str, Any]:
        """Plain-dict summary of an :meth:`aggregate` result."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# pass@k (mini-VerilogEval)
# ---------------------------------------------------------------------------


class PassAtKChecker:
    """Functional-equivalence verdict for one completion record.

    Holds the problem table so worker processes receive it once per
    fused phase (the executor pickles stages per phase, not per chunk);
    the golden parse/elaboration/trace cache in
    :mod:`repro.vereval.harness` then fills per worker, once per problem.

    :meth:`check_batch` is the chunk-level entry point
    :class:`~repro.evalkit.stages.CheckStage` prefers: all distinct
    completions of one problem inside a chunk check together through
    :func:`~repro.vereval.harness.check_candidates_lockstep`, so
    sequential candidates with compatible compiled shapes simulate in
    lockstep (one lane per candidate) instead of one at a time — with
    verdicts identical to :meth:`check` per record.
    """

    _VERDICT_CACHE_MAX = 8192

    def __init__(self, problems: Sequence[EvalProblem]) -> None:
        self.problems = list(problems)
        #: verdict memo: the check is a pure function of (problem,
        #: completion) and low-temperature sampling repeats completions
        #: verbatim, so duplicate samples skip parse+simulate entirely
        self._verdicts: Dict[Tuple[int, str], Tuple[bool, str]] = {}

    def _memoize(self, key: Tuple[int, str],
                 verdict: Tuple[bool, str]) -> None:
        if len(self._verdicts) >= self._VERDICT_CACHE_MAX:
            self._verdicts.clear()
        self._verdicts[key] = verdict

    def check(self, record: SampleRecord) -> SampleRecord:
        key = (record.unit_index, record.completion)
        verdict = self._verdicts.get(key)
        if verdict is None:
            verdict = check_candidate_source(
                self.problems[record.unit_index],
                record.prompt + record.completion,
            )
            self._memoize(key, verdict)
        record.passed, record.failure_reason = verdict
        return record

    def check_batch(self, records: Sequence[SampleRecord]):
        """Verdicts for a whole chunk, lockstep-grouped per problem.

        Equivalent to ``[self.check(r) for r in records]`` (same memo,
        same verdicts, same order) but unmemoized completions of one
        problem are checked as one lockstep batch.
        """
        records = list(records)
        # Snapshot the verdicts this chunk needs before inserting fresh
        # ones: a memo-capacity clear mid-batch must not lose them.
        needed: Dict[Tuple[int, str], Tuple[bool, str]] = {}
        fresh: Dict[int, Dict[Tuple[int, str], str]] = {}
        for record in records:
            key = (record.unit_index, record.completion)
            if key in needed:
                continue
            verdict = self._verdicts.get(key)
            if verdict is not None:
                needed[key] = verdict
            else:
                fresh.setdefault(record.unit_index, {})[key] = (
                    record.prompt + record.completion
                )
        for unit_index, by_key in fresh.items():
            keys = list(by_key)
            verdicts = check_candidates_lockstep(
                self.problems[unit_index], [by_key[k] for k in keys]
            )
            for key, verdict in zip(keys, verdicts):
                needed[key] = verdict
                self._memoize(key, verdict)
        for record in records:
            record.passed, record.failure_reason = needed[
                (record.unit_index, record.completion)
            ]
        return records

    def __getstate__(self):
        # Worker processes build their own memo; don't ship it.
        state = self.__dict__.copy()
        state["_verdicts"] = {}
        return state


class PassAtKTask(EvalTask):
    """The paper's pass@k protocol as an engine task."""

    def __init__(
        self,
        problems: Sequence[EvalProblem],
        config: Optional[EvalConfig] = None,
        task_id: str = "passk",
    ) -> None:
        self.task_id = task_id
        self.problems = list(problems)
        self.config = config or EvalConfig()
        if self.config.n_samples < max(self.config.ks):
            raise ValueError("n_samples must be >= max k")
        #: hoisted out of the sample loop: one prompt per problem
        self._prompts = [p.prompt() for p in self.problems]

    def spec_count(self, model_name: str) -> int:
        return (
            len(self.config.temperatures)
            * len(self.problems)
            * self.config.n_samples
        )

    def protocol_fingerprint(self) -> str:
        digest = hashlib.sha256()
        config = self.config
        digest.update(
            repr(
                (
                    self.task_id,
                    config.n_samples,
                    tuple(config.ks),
                    tuple(config.temperatures),
                    config.max_new_tokens,
                    config.seed,
                )
            ).encode("utf-8")
        )
        for problem, prompt in zip(self.problems, self._prompts):
            interface = problem.module.interface
            digest.update(
                repr(
                    (
                        problem.problem_id,
                        problem.module.name,
                        problem.stimulus_cycles,
                        problem.stimulus_seed,
                        interface.clock,
                        interface.reset,
                        interface.reset_active_high,
                    )
                ).encode("utf-8")
            )
            digest.update(prompt.encode("utf-8"))
            digest.update(b"\x1f")
            digest.update(problem.golden_source.encode("utf-8"))
        return digest.hexdigest()

    def specs(self, model_name: str) -> Iterator[SampleRecord]:
        for temperature in self.config.temperatures:
            for unit_index, problem in enumerate(self.problems):
                for sample_index in range(self.config.n_samples):
                    yield SampleRecord(
                        task_id=self.task_id,
                        model_name=model_name,
                        unit_id=problem.problem_id,
                        unit_index=unit_index,
                        sample_index=sample_index,
                        temperature=temperature,
                        max_new_tokens=self.config.max_new_tokens,
                    )

    def expand(self, record: SampleRecord) -> SampleRecord:
        record.prompt = self._prompts[record.unit_index]
        # The seed-era fork chain, verbatim: one independent stream per
        # (model, temperature, problem, sample).
        record.seed = (
            DeterministicRNG(self.config.seed)
            .fork(
                record.model_name,
                record.temperature,
                record.unit_id,
                record.sample_index,
            )
            .seed
        )
        return record

    def checker(self) -> PassAtKChecker:
        return PassAtKChecker(self.problems)

    def aggregate(
        self, model_name: str, records: Sequence[SampleRecord]
    ) -> EvalResult:
        # Records arrive in spec order (temperature-major, then problem,
        # then sample), so aggregation slices by position — duplicate
        # temperature values then overwrite their dict entries exactly
        # like the serial loop did, instead of double-counting a bucket.
        config = self.config
        per_temperature = len(self.problems) * config.n_samples
        result = EvalResult(model_name=model_name)
        for t_index, temperature in enumerate(config.temperatures):
            block = records[
                t_index * per_temperature:(t_index + 1) * per_temperature
            ]
            outcomes = []
            for u_index, problem in enumerate(self.problems):
                samples = block[
                    u_index * config.n_samples:(u_index + 1) * config.n_samples
                ]
                passes = 0
                failures: Dict[str, int] = {}
                for record in samples:
                    if record.passed:
                        passes += 1
                    else:
                        failures[record.failure_reason] = (
                            failures.get(record.failure_reason, 0) + 1
                        )
                outcomes.append(
                    ProblemOutcome(
                        problem_id=problem.problem_id,
                        passes=passes,
                        samples=len(samples),
                        failures=failures,
                    )
                )
            result.outcomes[temperature] = outcomes
            counts = [o.passes for o in outcomes]
            result.per_temperature[temperature] = {
                k: mean_pass_at_k(counts, config.n_samples, k)
                for k in config.ks
            }
        return result

    def result_json(self, result: EvalResult) -> Dict[str, Any]:
        return {
            "type": "passk",
            "best": {str(k): v for k, v in sorted(result.best().items())},
            "per_temperature": {
                str(t): {str(k): v for k, v in sorted(scores.items())}
                for t, scores in result.per_temperature.items()
            },
            "summary": result.summary(),
        }


# ---------------------------------------------------------------------------
# copyright violation rate
# ---------------------------------------------------------------------------


class CopyrightChecker:
    """Similarity lookup of prompt+completion against the whole corpus.

    Carries the (shared) :class:`~repro.textsim.SimilarityIndex`; in a
    multi-model plan every model's samples hit the same index instance
    instead of rebuilding it per model.
    """

    def __init__(self, index, threshold: float) -> None:
        self.index = index
        self.threshold = threshold

    def check(self, record: SampleRecord) -> SampleRecord:
        match = self.index.best_match(record.prompt + record.completion)
        record.similarity = match.score if match else 0.0
        record.best_match_key = match.key if match else None
        record.violation = record.similarity >= self.threshold
        record.passed = not record.violation
        return record


class CopyrightTask(EvalTask):
    """The infringement benchmark as an engine task.

    Wraps a :class:`~repro.copyright.CopyrightBenchmark` (its sampled
    prompt keys and its similarity index), reproducing the serial
    ``evaluate`` loop: prompts built from each protected file, one
    completion per prompt at the given temperature, seed forked per
    (key, position) — independent of the model, exactly as before.
    """

    def __init__(
        self,
        benchmark: CopyrightBenchmark,
        temperature: float = 0.2,
        max_new_tokens: int = 512,
        seed: int = 0,
        task_id: str = "copyright",
    ) -> None:
        self.task_id = task_id
        self.benchmark = benchmark
        self.temperature = temperature
        self.max_new_tokens = max_new_tokens
        self.seed = seed
        self._prompts: Dict[int, str] = {}

    def _prompt(self, unit_index: int) -> str:
        prompt = self._prompts.get(unit_index)
        if prompt is None:
            key = self.benchmark.prompt_keys[unit_index]
            prompt = build_prompt(
                self.benchmark.corpus.text(key), self.benchmark.prompt_spec
            )
            self._prompts[unit_index] = prompt
        return prompt

    def spec_count(self, model_name: str) -> int:
        return len(self.benchmark.prompt_keys)

    def protocol_fingerprint(self) -> str:
        benchmark = self.benchmark
        digest = hashlib.sha256()
        digest.update(
            repr(
                (
                    self.task_id,
                    self.temperature,
                    self.max_new_tokens,
                    self.seed,
                    benchmark.threshold,
                    benchmark.prompt_spec,
                    tuple(benchmark.prompt_keys),
                )
            ).encode("utf-8")
        )
        for key in benchmark.prompt_keys:
            digest.update(benchmark.corpus.text(key).encode("utf-8"))
        return digest.hexdigest()

    def specs(self, model_name: str) -> Iterator[SampleRecord]:
        for unit_index, key in enumerate(self.benchmark.prompt_keys):
            yield SampleRecord(
                task_id=self.task_id,
                model_name=model_name,
                unit_id=str(key),
                unit_index=unit_index,
                sample_index=0,
                temperature=self.temperature,
                max_new_tokens=self.max_new_tokens,
            )

    def expand(self, record: SampleRecord) -> Optional[SampleRecord]:
        prompt = self._prompt(record.unit_index)
        if not prompt:
            return None  # comment-only file: the serial loop skipped it too
        record.prompt = prompt
        record.seed = (
            DeterministicRNG(self.seed)
            .fork(self.benchmark.prompt_keys[record.unit_index], record.unit_index)
            .seed
        )
        return record

    def checker(self) -> CopyrightChecker:
        return CopyrightChecker(self.benchmark.index, self.benchmark.threshold)

    def aggregate(
        self, model_name: str, records: Sequence[SampleRecord]
    ) -> ViolationReport:
        report = ViolationReport(
            model_name=model_name, threshold=self.benchmark.threshold
        )
        for record in records:
            report.results.append(
                PromptResult(
                    source_key=self.benchmark.prompt_keys[record.unit_index],
                    prompt=record.prompt,
                    completion=record.completion,
                    best_match_key=record.best_match_key,
                    similarity=record.similarity,
                    violation=record.violation,
                )
            )
        return report

    def result_json(self, result: ViolationReport) -> Dict[str, Any]:
        return {
            "type": "copyright",
            "violations": result.violations,
            "prompts": len(result.results),
            "violation_rate": result.violation_rate,
            "threshold": result.threshold,
            "summary": result.summary(),
        }
