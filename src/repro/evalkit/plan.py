"""EvalPlan: models x tasks, compiled to the execution engine.

Exactly like :class:`repro.curation.CurationPipeline` on the curation
side, a plan is *data*: it declares which models run which tasks under
which protocol, compiles that into a registry-built
:class:`~repro.engine.StageGraph`, and streams sample-level work units
through it.  Because samples are independent, the whole plan — every
model, every task, every temperature — is one flat stream: generation
and checking fan across the process pool; a multi-model plan shares the
problem set and the copyright similarity index across models instead of
rebuilding them per model.

Runs checkpoint through :class:`~repro.engine.CheckpointStore`: the
snapshot carries the engine's progress counter plus every checked record,
so a killed sweep resumes mid-problem and completes with a
:class:`~repro.evalkit.RunResult` identical to an uninterrupted run.

Checking is chunk-batched: :class:`~repro.evalkit.stages.CheckStage`
hands each chunk's records to their task's checker together, so pass@k
candidates of one problem simulate in lockstep (one lane per candidate,
see :func:`repro.vereval.check_candidates_lockstep`) before pool
fan-out.

Example (runnable; ``docs/architecture.md`` carries the resumable
variant, executed by ``tools/check_docs.py``)::

    from repro.evalkit import EvalPlan, PassAtKTask
    from repro.llm import LanguageModel
    from repro.vereval import EvalConfig, build_problem_set

    model = LanguageModel.pretrain("demo", [
        "module m(input a, output y); assign y = ~a; endmodule",
    ] * 4)
    task = PassAtKTask(
        build_problem_set(n_problems=2),
        EvalConfig(n_samples=2, ks=(1,), temperatures=(0.4,),
                   max_new_tokens=64),
    )
    run = EvalPlan([model], [task]).run()
    print(run.result(model.name, task.task_id).summary())
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import islice
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.engine import (
    CheckpointStore,
    StageGraph,
    build_stages,
    iter_chunks,
    make_executor,
)
from repro.errors import EvaluationError, PlanInterrupted
from repro.llm.model import LanguageModel
from repro.evalkit.records import RunResult, SampleRecord
from repro.evalkit.stages import AggregateStage
from repro.evalkit.tasks import EvalTask

#: one work unit is a full generate+simulate sample, so dispatch chunks
#: are much smaller than curation's (a chunk is the pool's unit of work)
DEFAULT_EVAL_CHUNK_SIZE = 8

#: specs between checkpoint writes when a store is attached
DEFAULT_CHECKPOINT_EVERY = 64


def _segment_key(tag: str, index: int) -> str:
    return f"{tag}-seg{index:05d}"


@dataclass
class PlanProgress:
    """A live snapshot of a running plan, streamed to ``on_progress``.

    Emitted as checked records land in the aggregation sink — including
    the replayed records of a resumed run — so a long sweep reports
    partial results while later chunks are still generating (on a
    cluster executor, while they are still out on lease).
    """

    done: int
    total: int
    passed: int

    @property
    def frac(self) -> float:
        return self.done / self.total if self.total else 1.0


class EvalPlan:
    """A declarative evaluation run: models x tasks x protocol params."""

    def __init__(
        self,
        models: Sequence[LanguageModel],
        tasks: Sequence[EvalTask],
        chunk_size: Optional[int] = None,
        executor=None,
    ) -> None:
        if not models:
            raise ValueError("EvalPlan needs at least one model")
        if not tasks:
            raise ValueError("EvalPlan needs at least one task")
        names = [m.name for m in models]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model names: {names}")
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate task ids: {ids}")
        self.models = list(models)
        self.tasks = list(tasks)
        self.chunk_size = (
            chunk_size if chunk_size is not None else DEFAULT_EVAL_CHUNK_SIZE
        )
        self.executor = executor

    # -- compilation --------------------------------------------------------

    def stage_specs(self) -> List[Tuple[str, Mapping]]:
        """The declarative stage list this plan compiles to."""
        return [
            ("eval_expand", {"tasks": {t.task_id: t for t in self.tasks}}),
            ("eval_generate", {"models": {m.name: m for m in self.models}}),
            (
                "eval_check",
                {"checkers": {t.task_id: t.checker() for t in self.tasks}},
            ),
            ("eval_aggregate", {}),
        ]

    def compile(self, executor=None) -> StageGraph:
        """Build the engine :class:`StageGraph` for this plan.

        ``executor`` overrides the plan's own; either may be an executor
        *instance* or a spec string (``"serial"``, ``"pool"``,
        ``"cluster"``, ``"auto"``) resolved through
        :func:`repro.engine.make_executor`.
        """
        spec = executor if executor is not None else self.executor
        resolved = make_executor(spec) if isinstance(spec, str) else spec
        return StageGraph(
            build_stages(self.stage_specs()),
            chunk_size=self.chunk_size,
            executor=resolved,
        )

    # -- the spec stream ----------------------------------------------------

    def specs(self) -> Iterator[SampleRecord]:
        """Every sample spec of the plan, in canonical stream order."""
        for model in self.models:
            for task in self.tasks:
                yield from task.specs(model.name)

    def total_specs(self) -> int:
        return sum(
            task.spec_count(model.name)
            for model in self.models
            for task in self.tasks
        )

    def fingerprint(self) -> str:
        """Identity of the plan's sample stream, guarding resume mismatches.

        Covers the models (name plus training-scale descriptors — a
        retrained same-name model almost surely differs in these) and
        each task's :meth:`~EvalTask.protocol_fingerprint`, so a
        checkpoint cannot silently resume under a changed protocol even
        when the spec *count* happens to match.
        """
        digest = hashlib.sha256()
        for model in self.models:
            counts = getattr(model, "counts", None)
            descriptor = (
                model.name,
                getattr(counts, "tokens_trained", None),
                getattr(counts, "pair_count", None),
            )
            digest.update(repr(descriptor).encode("utf-8"))
        for task in self.tasks:
            digest.update(task.protocol_fingerprint().encode("utf-8"))
            for model in self.models:
                digest.update(str(task.spec_count(model.name)).encode("utf-8"))
        return digest.hexdigest()[:16]

    # -- execution ----------------------------------------------------------

    def run(
        self,
        store: Optional[CheckpointStore] = None,
        tag: str = "evalkit",
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        executor=None,
        on_progress=None,
        stop=None,
    ) -> RunResult:
        """Execute the plan, resuming from ``store``/``tag`` if a snapshot
        exists; a completed snapshot just replays its result.

        ``executor`` overrides the plan's executor for this run — an
        instance or a spec string (``executor="cluster"`` shards the
        pooled generate+check phase across cluster workers); a
        string-built executor is owned by the run and closed on exit.
        ``on_progress`` receives a :class:`PlanProgress` as checked
        records stream into the sink.

        ``stop`` is the cooperative-drain hook: a zero-argument callable
        polled at each checkpoint-block boundary.  When it returns True
        the run raises :class:`~repro.errors.PlanInterrupted` *after*
        saving the blocks completed so far, so a rerun with the same
        ``store``/``tag`` resumes where the drain landed — the
        :mod:`repro.service` supervisor maps this to the ``resumable``
        job state on SIGTERM/cancel.
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        with obs.run_capture(
            "eval_plan",
            models=len(self.models),
            tasks=len(self.tasks),
            specs=self.total_specs(),
        ) as capture:
            run = self._run(
                store, tag, checkpoint_every, executor, on_progress, stop
            )
        # Built when the capture closes; the summary travels on the
        # result so callers see it without touching the obs module.
        run.telemetry = capture.telemetry
        return run

    def _run(
        self,
        store: Optional[CheckpointStore],
        tag: str,
        checkpoint_every: int,
        executor=None,
        on_progress=None,
        stop=None,
    ) -> RunResult:
        spec = executor if executor is not None else self.executor
        owned = isinstance(spec, str)
        resolved = make_executor(spec) if owned else spec
        try:
            return self._run_graph(
                store, tag, checkpoint_every, resolved, on_progress, stop
            )
        finally:
            if owned and resolved is not None:
                resolved.close()

    def _run_graph(
        self,
        store: Optional[CheckpointStore],
        tag: str,
        checkpoint_every: int,
        executor,
        on_progress,
        stop=None,
    ) -> RunResult:
        # ``executor`` is already resolved (or None when the plan has
        # none), so compile never re-resolves a spec string here.
        graph = self.compile(executor=executor)
        sink = graph.stages[-1]
        assert isinstance(sink, AggregateStage)
        fingerprint = self.fingerprint()
        done = 0
        segments = 0
        if store is not None:
            head = store.load(tag)
            if head is not None:
                if head.get("fingerprint") != fingerprint:
                    raise EvaluationError(
                        f"checkpoint {tag!r} belongs to a different plan "
                        "(models/tasks/protocol changed); delete it or use "
                        "another tag"
                    )
                # Records are checkpointed as append-only segments (one
                # per completed block) so each save pickles O(block), not
                # the whole history; the head holds counters + metrics.
                segments = head["segments"]
                engine_state = head["engine"]
                records = []
                for index in range(segments):
                    segment = store.load(_segment_key(tag, index))
                    if segment is None:
                        raise EvaluationError(
                            f"checkpoint {tag!r} is missing segment "
                            f"{index} of {segments}; delete the tag and "
                            "restart the run"
                        )
                    records.extend(segment)
                engine_state["stages"][sink.name] = records
                graph.restore_state(engine_state)
                done = graph.items_in
                obs.count("checkpoint.resume_skipped", done)
        if on_progress is not None:
            total = self.total_specs()
            passed_sofar = sum(1 for r in sink.records if r.passed)

            def _emit(new_records, collected):
                nonlocal passed_sofar
                passed_sofar += sum(1 for r in new_records if r.passed)
                on_progress(
                    PlanProgress(
                        done=collected, total=total, passed=passed_sofar
                    )
                )

            sink.on_records = _emit
            if sink.records:  # a resumed run reports its restored floor
                on_progress(
                    PlanProgress(
                        done=len(sink.records),
                        total=total,
                        passed=passed_sofar,
                    )
                )
        stream: Iterator[SampleRecord] = self.specs()
        if done:
            stream = islice(stream, done, None)
        if store is None:
            if stop is not None and stop():
                raise PlanInterrupted(
                    f"plan {tag!r} stopped before ingest (no store: "
                    "a rerun starts from scratch)"
                )
            graph.ingest(stream)
        else:
            for block in iter_chunks(stream, checkpoint_every):
                if stop is not None and stop():
                    raise PlanInterrupted(
                        f"plan {tag!r} drained at a checkpoint boundary "
                        f"({graph.items_in} of {self.total_specs()} "
                        "specs done; resume with the same store/tag)"
                    )
                collected = len(sink.records)
                graph.ingest(block)
                # Segment first, then the head that references it: a
                # crash between the two leaves an orphan segment the old
                # head ignores, never a head pointing at missing data.
                store.save(
                    _segment_key(tag, segments), sink.records[collected:]
                )
                segments += 1
                engine_state = graph.checkpoint_state(exclude=(sink.name,))
                store.save(
                    tag,
                    {
                        "fingerprint": fingerprint,
                        "engine": engine_state,
                        "segments": segments,
                    },
                )
        if graph.items_in != self.total_specs():
            raise EvaluationError(
                f"plan consumed {graph.items_in} specs, expected "
                f"{self.total_specs()} — corrupt checkpoint?"
            )
        return self._collect(graph)

    def _collect(self, graph: StageGraph) -> RunResult:
        sink = graph.stages[-1]
        assert isinstance(sink, AggregateStage)
        records = list(sink.records)
        grouped = {}
        for record in records:
            key = (record.model_name, record.task_id)
            grouped.setdefault(key, []).append(record)
        run = RunResult(
            model_names=[m.name for m in self.models],
            task_ids=[t.task_id for t in self.tasks],
            records=records,
            engine_report=graph.to_text(),
            stage_stats=graph.stage_stats(),
        )
        for model in self.models:
            for task in self.tasks:
                result = task.aggregate(
                    model.name, grouped.get((model.name, task.task_id), [])
                )
                run.results[(model.name, task.task_id)] = result
                run.aggregates.setdefault(model.name, {})[task.task_id] = (
                    task.result_json(result)
                )
        return run
