"""repro.evalkit — unified, engine-backed model evaluation.

The paper's headline numbers are all *evaluation* outputs: Table II
pass@k, Fig. 3 violation rates, the abstract's joint claim.  This
package turns those protocols into one declarative API on top of
:mod:`repro.engine`:

* an :class:`EvalTask` protocol with two implementations —
  :class:`PassAtKTask` (mini-VerilogEval functional correctness) and
  :class:`CopyrightTask` (the infringement benchmark);
* an :class:`EvalPlan` (models x tasks x protocol params) that compiles
  into a :class:`~repro.engine.StageGraph` of sample-level work units:
  seed/prompt expansion, generation, pooled checking with an
  order-preserving merge, and aggregation into typed
  :class:`RunResult` records with per-sample provenance and JSON export;
* checkpointed execution through
  :class:`~repro.engine.CheckpointStore`, so a killed pass@k sweep
  resumes mid-problem and finishes with the identical result.

``repro.vereval.evaluate_model``, ``CopyrightBenchmark.evaluate``,
``FreeVTrainer.headline``, and ``ModelZoo.evaluate`` are facades over
this package; all reproduce the seed-era serial harnesses number for
number (same :class:`~repro.utils.rng.DeterministicRNG` fork chain per
sample).
"""

from repro.evalkit.records import RunResult, SampleRecord
from repro.evalkit.stages import (
    AggregateStage,
    CheckStage,
    ExpandStage,
    GenerationStage,
)
from repro.evalkit.tasks import (
    CopyrightChecker,
    CopyrightTask,
    EvalTask,
    PassAtKChecker,
    PassAtKTask,
)
from repro.evalkit.plan import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_EVAL_CHUNK_SIZE,
    EvalPlan,
    PlanProgress,
)

__all__ = [
    "RunResult",
    "SampleRecord",
    "AggregateStage",
    "CheckStage",
    "ExpandStage",
    "GenerationStage",
    "CopyrightChecker",
    "CopyrightTask",
    "EvalTask",
    "PassAtKChecker",
    "PassAtKTask",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_EVAL_CHUNK_SIZE",
    "EvalPlan",
    "PlanProgress",
]
