"""Typed work units and run results for the evaluation engine.

One :class:`SampleRecord` flows through the whole stage graph: the plan
emits it bare (task/model/unit/sample coordinates only), the expansion
stage fills prompt and seed, the generation stage fills the completion,
the checking stage fills the verdict fields, and the aggregation stage
collects it.  A finished run is a :class:`RunResult`: every record (the
per-sample provenance behind Table II and Fig. 3) plus the per-(model,
task) aggregate objects and a JSON export.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class SampleRecord:
    """One evaluation sample with full provenance.

    ``unit_id``/``unit_index`` name the problem (pass@k) or the
    copyrighted source file (copyright benchmark); ``sample_index`` is
    the draw number within the unit.  Verdict fields not used by a task
    keep their defaults (e.g. ``similarity`` stays 0.0 for pass@k).
    """

    task_id: str
    model_name: str
    unit_id: str
    unit_index: int
    sample_index: int
    temperature: float
    max_new_tokens: int
    seed: int = 0
    prompt: str = ""
    completion: str = ""
    passed: bool = False
    failure_reason: str = ""
    similarity: float = 0.0
    best_match_key: Optional[str] = None
    violation: bool = False

    def to_dict(self, include_text: bool = True) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if not include_text:
            data.pop("prompt")
            data.pop("completion")
        return data


@dataclass
class RunResult:
    """Everything one :class:`~repro.evalkit.EvalPlan` run produced.

    ``records`` preserves stream order (models x tasks x units x
    samples); ``results`` maps ``(model_name, task_id)`` to the task's
    aggregate object (:class:`~repro.vereval.EvalResult` for pass@k,
    :class:`~repro.copyright.ViolationReport` for the copyright
    benchmark); ``aggregates`` carries the same numbers as plain dicts
    for serialization.
    """

    model_names: List[str] = field(default_factory=list)
    task_ids: List[str] = field(default_factory=list)
    records: List[SampleRecord] = field(default_factory=list)
    results: Dict[Tuple[str, str], Any] = field(default_factory=dict)
    aggregates: Dict[str, Dict[str, Dict[str, Any]]] = field(
        default_factory=dict
    )
    engine_report: str = ""
    #: per-stage :class:`~repro.engine.StageStat` rows (typed counterpart
    #: of the ``engine_report`` text table)
    stage_stats: List[Any] = field(default_factory=list)
    #: :class:`~repro.obs.export.RunTelemetry` for the run, or None when
    #: observability was off
    telemetry: Optional[Any] = None

    def result(self, model_name: str, task_id: str) -> Any:
        try:
            return self.results[(model_name, task_id)]
        except KeyError:
            known = sorted(self.results)
            raise KeyError(
                f"no result for ({model_name!r}, {task_id!r}); ran: {known}"
            ) from None

    def samples(
        self, model_name: Optional[str] = None, task_id: Optional[str] = None
    ) -> List[SampleRecord]:
        """Records filtered by model and/or task, in stream order."""
        return [
            r
            for r in self.records
            if (model_name is None or r.model_name == model_name)
            and (task_id is None or r.task_id == task_id)
        ]

    def seeds(self, model_name: str, task_id: str) -> List[int]:
        """Per-sample generation seeds, the provenance identity check."""
        return [r.seed for r in self.samples(model_name, task_id)]

    def to_json(self, include_text: bool = True, indent: int = 2) -> str:
        payload = {
            "models": self.model_names,
            "tasks": self.task_ids,
            "aggregates": self.aggregates,
            "samples": [r.to_dict(include_text) for r in self.records],
        }
        return json.dumps(payload, indent=indent)
