"""Token definitions for the Verilog lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"        # plain decimal: 42
    BASED_NUMBER = "based"   # sized/based: 8'hFF, 'b1010, 4'd9
    STRING = "string"
    OP = "op"                # operators and punctuation
    SYSTEM_IDENT = "system"  # $display, $signed, ...
    DIRECTIVE = "directive"  # `define, `timescale, ... (skipped bodies)
    EOF = "eof"


#: Verilog-2001 keywords recognized by the subset grammar.  Keywords outside
#: the subset are still lexed as keywords so the parser can produce precise
#: "unsupported construct" errors instead of misparsing them as identifiers.
KEYWORDS = frozenset(
    """
    module endmodule input output inout wire reg integer real time
    parameter localparam assign always initial begin end if else case
    casez casex endcase default for while repeat forever posedge negedge
    or and not nand nor xor xnor buf bufif0 bufif1 notif0 notif1
    supply0 supply1 tri triand trior tri0 tri1 trireg
    function endfunction task endtask generate endgenerate genvar
    signed unsigned defparam specify endspecify primitive endprimitive
    table endtable fork join wait disable deassign force release
    event real realtime scalared vectored small medium large
    strong0 strong1 pull0 pull1 weak0 weak1 highz0 highz1
    macromodule cell config endconfig design instance liblist library
    use automatic cmos rcmos nmos pmos rnmos rpmos rtran tran tranif0
    tranif1 rtranif0 rtranif1 pulldown pullup
    """.split()
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPS = (
    "<<<", ">>>", "===", "!==",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "**", "+:", "-:", "~&", "~|", "~^", "^~", "->",
)

#: All single-character operator / punctuation characters.
SINGLE_CHAR_OPS = frozenset("+-*/%><=!&|^~?:;,.()[]{}#@")


@dataclass(frozen=True)
class Token:
    """A single lexed token with source position for error reporting."""

    kind: TokenKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"

    def is_op(self, text: str) -> bool:
        return self.kind is TokenKind.OP and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text
