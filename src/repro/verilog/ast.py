"""AST node definitions for the Verilog-2001 subset.

All nodes are plain dataclasses.  Expressions keep source position (line)
for diagnostics.  Width/parameter resolution happens later, in
:mod:`repro.sim.elaborate`, so ranges and literals store expressions, not
resolved integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expression nodes."""

    line: int = field(default=0, compare=False)


@dataclass
class Number(Expr):
    """Integer literal, optionally sized/based (``8'hFF``)."""

    value: int = 0
    width: Optional[int] = None
    signed: bool = False
    #: True when the literal contained x/z/? digits; the two-state simulator
    #: treats those bits as 0 but casez pattern matching treats them as
    #: wildcards.
    has_unknown: bool = False
    #: Bit mask of positions holding x/z/? digits (LSB-aligned).
    unknown_mask: int = 0


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    """Unary operator: ``~ ! - + & | ^ ~& ~| ~^``."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    """Binary operator with Verilog semantics."""

    op: str = ""
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class Ternary(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    other: Expr = None  # type: ignore[assignment]


@dataclass
class Concat(Expr):
    parts: List[Expr] = field(default_factory=list)


@dataclass
class Repeat(Expr):
    """Replication ``{N{expr, ...}}``."""

    count: Expr = None  # type: ignore[assignment]
    inner: Concat = None  # type: ignore[assignment]


@dataclass
class Index(Expr):
    """Bit select or memory/array element select: ``a[i]``."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class PartSelect(Expr):
    """Constant part select ``a[msb:lsb]``."""

    base: Expr = None  # type: ignore[assignment]
    msb: Expr = None  # type: ignore[assignment]
    lsb: Expr = None  # type: ignore[assignment]


@dataclass
class IndexedPartSelect(Expr):
    """Indexed part select ``a[base +: width]`` or ``a[base -: width]``."""

    base: Expr = None  # type: ignore[assignment]
    start: Expr = None  # type: ignore[assignment]
    width: Expr = None  # type: ignore[assignment]
    ascending: bool = True  # True for +:, False for -:


@dataclass
class SystemCall(Expr):
    """System function call in expression position (``$signed``, ``$clog2``)."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = field(default=0, compare=False)


@dataclass
class Block(Stmt):
    """``begin ... end`` (optionally named)."""

    stmts: List[Stmt] = field(default_factory=list)
    name: Optional[str] = None


@dataclass
class Assign(Stmt):
    """Blocking (``=``) or nonblocking (``<=``) procedural assignment."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]
    blocking: bool = True


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    other: Optional[Stmt] = None


@dataclass
class CaseItem:
    """One arm of a case statement; empty labels means ``default``."""

    labels: List[Expr] = field(default_factory=list)
    body: Stmt = None  # type: ignore[assignment]

    @property
    def is_default(self) -> bool:
        return not self.labels


@dataclass
class Case(Stmt):
    kind: str = "case"  # case | casez | casex
    subject: Expr = None  # type: ignore[assignment]
    items: List[CaseItem] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Assign = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]
    step: Assign = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class NullStmt(Stmt):
    """A lone semicolon."""


@dataclass
class SystemTaskCall(Stmt):
    """System task statement (``$display(...);``) — parsed, ignored in sim."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------


@dataclass
class Range:
    """A ``[msb:lsb]`` range with unresolved expressions."""

    msb: Expr
    lsb: Expr


@dataclass
class PortDecl:
    """Port declaration (ANSI header style or body style)."""

    direction: str  # input | output | inout
    name: str
    range: Optional[Range] = None
    is_reg: bool = False
    signed: bool = False
    line: int = 0


@dataclass
class NetDecl:
    """wire/reg/integer declaration of one identifier.

    ``array_dims`` is non-empty for memories (``reg [7:0] mem [0:15]``).
    ``init`` carries a declaration-assignment (``wire x = a & b;``).
    """

    kind: str  # wire | reg | integer
    name: str
    range: Optional[Range] = None
    array_dims: List[Range] = field(default_factory=list)
    signed: bool = False
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class ParamDecl:
    name: str
    value: Expr
    local: bool = False
    range: Optional[Range] = None
    line: int = 0


@dataclass
class ContinuousAssign:
    target: Expr
    value: Expr
    line: int = 0


@dataclass
class SensItem:
    """One sensitivity-list entry: ``posedge clk``, ``negedge rst``, or a
    level-sensitive signal name.  ``edge`` is ``posedge``/``negedge``/``level``."""

    edge: str
    signal: str


@dataclass
class AlwaysBlock:
    """``always @(...)`` block.  ``sensitivity is None`` means ``@(*)``."""

    sensitivity: Optional[List[SensItem]]
    body: Stmt
    line: int = 0

    @property
    def is_combinational(self) -> bool:
        if self.sensitivity is None:
            return True
        return all(item.edge == "level" for item in self.sensitivity)

    @property
    def edge_items(self) -> List[SensItem]:
        if self.sensitivity is None:
            return []
        return [item for item in self.sensitivity if item.edge != "level"]


@dataclass
class InitialBlock:
    body: Stmt
    line: int = 0


@dataclass
class PortConnection:
    """Connection in an instantiation; ``name is None`` for positional."""

    name: Optional[str]
    expr: Optional[Expr]


@dataclass
class Instance:
    """Module instantiation."""

    module_name: str
    instance_name: str
    param_overrides: List[Tuple[Optional[str], Expr]] = field(default_factory=list)
    connections: List[PortConnection] = field(default_factory=list)
    line: int = 0


@dataclass
class Module:
    """A parsed module: ordered port names plus all body items."""

    name: str
    port_order: List[str] = field(default_factory=list)
    ports: List[PortDecl] = field(default_factory=list)
    params: List[ParamDecl] = field(default_factory=list)
    nets: List[NetDecl] = field(default_factory=list)
    assigns: List[ContinuousAssign] = field(default_factory=list)
    always_blocks: List[AlwaysBlock] = field(default_factory=list)
    initial_blocks: List[InitialBlock] = field(default_factory=list)
    instances: List[Instance] = field(default_factory=list)
    line: int = 0

    def port(self, name: str) -> Optional[PortDecl]:
        for port in self.ports:
            if port.name == name:
                return port
        return None


@dataclass
class SourceFile:
    """All modules parsed from one source text."""

    modules: List[Module] = field(default_factory=list)

    def module(self, name: str) -> Optional[Module]:
        for mod in self.modules:
            if mod.name == name:
                return mod
        return None
