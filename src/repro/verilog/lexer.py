"""Hand-written lexer for the Verilog-2001 subset.

Produces a flat token stream with line/column positions.  Comments are
skipped; compiler directives (backtick lines such as ``\\`timescale``) are
consumed to end-of-line and surfaced as ``DIRECTIVE`` tokens so the parser
can ignore them without losing position information.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError
from repro.verilog.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPS,
    SINGLE_CHAR_OPS,
    Token,
    TokenKind,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_BASE_CHARS = frozenset("bBoOdDhH")
_BASED_DIGITS = frozenset("0123456789abcdefABCDEFxXzZ?_")


class Lexer:
    """Single-pass scanner over Verilog source text."""

    def __init__(self, source: str) -> None:
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> List[Token]:
        """Lex the entire input, appending a trailing EOF token."""
        out: List[Token] = []
        while True:
            tok = self._next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out

    # -- scanning ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self._pos + offset
        return self._src[idx] if idx < len(self._src) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._src):
                return
            if self._src[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _error(self, message: str) -> LexError:
        return LexError(message, self._line, self._col)

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments."""
        while self._pos < len(self._src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._src):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, col = self._line, self._col
        if self._pos >= len(self._src):
            return Token(TokenKind.EOF, "", line, col)
        ch = self._peek()

        if ch == "`":
            return self._lex_directive(line, col)
        if ch in _IDENT_START:
            return self._lex_ident(line, col)
        if ch == "$":
            return self._lex_system_ident(line, col)
        if ch in _DIGITS or (ch == "'" and self._peek(1) in _BASE_CHARS):
            return self._lex_number(line, col)
        if ch == '"':
            return self._lex_string(line, col)
        return self._lex_operator(line, col)

    def _lex_directive(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self._src) and self._peek() != "\n":
            # Directives with line continuations (multi-line `define).
            if self._peek() == "\\" and self._peek(1) == "\n":
                self._advance(2)
                continue
            self._advance()
        return Token(TokenKind.DIRECTIVE, self._src[start:self._pos], line, col)

    def _lex_ident(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self._src) and self._peek() in _IDENT_CONT:
            self._advance()
        text = self._src[start:self._pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, col)

    def _lex_system_ident(self, line: int, col: int) -> Token:
        start = self._pos
        self._advance()  # consume '$'
        if self._peek() not in _IDENT_START:
            raise self._error("'$' must start a system identifier")
        while self._pos < len(self._src) and self._peek() in _IDENT_CONT:
            self._advance()
        return Token(TokenKind.SYSTEM_IDENT, self._src[start:self._pos], line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self._pos
        # Optional decimal size prefix.
        while self._peek() in _DIGITS or self._peek() == "_":
            self._advance()
        if self._peek() == "'":
            self._advance()
            if self._peek() in "sS":
                self._advance()
            if self._peek() not in _BASE_CHARS:
                raise self._error("expected base character after \"'\"")
            self._advance()
            if self._peek() not in _BASED_DIGITS:
                raise self._error("expected digits after number base")
            while self._peek() in _BASED_DIGITS:
                self._advance()
            return Token(TokenKind.BASED_NUMBER, self._src[start:self._pos], line, col)
        # Plain decimal (possibly a real literal; we lex the fraction but the
        # parser treats reals as unsupported).
        if self._peek() == "." and self._peek(1) in _DIGITS:
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        text = self._src[start:self._pos]
        if not text:
            raise self._error("malformed number")
        return Token(TokenKind.NUMBER, text, line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self._pos >= len(self._src):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "\n":
                raise self._error("newline in string literal")
            if ch == "\\":
                nxt = self._peek(1)
                escapes = {"n": "\n", "t": "\t", "\\": "\\", '"': '"'}
                chars.append(escapes.get(nxt, nxt))
                self._advance(2)
                continue
            if ch == '"':
                self._advance()
                return Token(TokenKind.STRING, "".join(chars), line, col)
            chars.append(ch)
            self._advance()

    def _lex_operator(self, line: int, col: int) -> Token:
        for op in MULTI_CHAR_OPS:
            if self._src.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenKind.OP, op, line, col)
        ch = self._peek()
        if ch in SINGLE_CHAR_OPS:
            self._advance()
            return Token(TokenKind.OP, ch, line, col)
        raise self._error(f"illegal character {ch!r}")


def lex(source: str) -> List[Token]:
    """Lex ``source`` into a token list ending with EOF."""
    return Lexer(source).tokens()
