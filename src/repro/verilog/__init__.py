"""Verilog-2001 subset front end: lexer, parser, AST, and syntax checker.

This package is the reproduction's substitute for Icarus Verilog 10.3,
which the paper uses to drop syntactically invalid files from FreeSet
(Sec. III-D2).  It also feeds the RTL simulator in :mod:`repro.sim`, which
the functional benchmark uses to decide pass/fail per completion.

Supported subset (the synthesizable constructs our corpus generators emit):

* ``module``/``endmodule`` with ANSI or non-ANSI port lists
* ``parameter``/``localparam`` declarations and overrides
* ``wire``/``reg``/``integer`` declarations with ranges and array dims
* ``assign`` continuous assignments
* ``always`` blocks with edge or combinational sensitivity lists
* ``initial`` blocks (parsed; used only for constant reg initialization)
* ``if``/``else``, ``case``/``casez``/``casex``, ``for`` loops, ``begin``/``end``
* blocking and nonblocking assignments
* full operator set with standard precedence, ``{}`` concat/replication,
  bit/part selects including indexed (``+:``/``-:``) selects
* module instantiation with named or positional connections and parameter
  overrides
"""

from repro.verilog.tokens import Token, TokenKind, KEYWORDS
from repro.verilog.lexer import Lexer, lex
from repro.verilog.fastlex import check_syntax_fast, lex_fast
from repro.verilog.parser import Parser, parse_source, parse_source_fast
from repro.verilog.syntax import SyntaxReport, check_syntax
from repro.verilog import ast

__all__ = [
    "Token",
    "TokenKind",
    "KEYWORDS",
    "Lexer",
    "lex",
    "lex_fast",
    "check_syntax_fast",
    "Parser",
    "parse_source",
    "parse_source_fast",
    "SyntaxReport",
    "check_syntax",
    "ast",
]
