"""Recursive-descent parser for the Verilog-2001 subset.

The grammar covers the synthesizable constructs produced by the corpus
generators in :mod:`repro.vgen` (see the package docstring of
:mod:`repro.verilog` for the exact subset).  Anything outside the subset
raises :class:`~repro.errors.ParseError` with a position, which is exactly
the behaviour the curation pipeline needs: a file either parses (kept) or
does not (dropped), mirroring the paper's Icarus-based syntax filter.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.verilog import ast
from repro.verilog.lexer import lex
from repro.verilog.tokens import Token, TokenKind

# Binary operator precedence, low to high.  Each tier is left-associative
# except ** (handled specially).
_BINARY_TIERS: Tuple[Tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("|",),
    ("^", "^~", "~^"),
    ("&",),
    ("==", "!=", "===", "!=="),
    ("<", "<=", ">", ">="),
    ("<<", ">>", "<<<", ">>>"),
    ("+", "-"),
    ("*", "/", "%"),
)

#: operator -> tier index (higher binds tighter), for precedence climbing
_BINARY_OP_TIER = {
    op: tier for tier, ops in enumerate(_BINARY_TIERS) for op in ops
}

_UNARY_OPS = frozenset(["~", "!", "-", "+", "&", "|", "^", "~&", "~|", "~^"])

_BASE_RADIX = {"b": 2, "o": 8, "d": 10, "h": 16}


def parse_based_literal(text: str, line: int = 0) -> ast.Number:
    """Parse a sized/based literal such as ``8'hF0`` or ``4'b10x?``.

    X/Z/? digits are recorded in ``unknown_mask`` (used by casez/casex
    matching) and contribute zero to ``value`` (two-state semantics).
    """
    tick = text.index("'")
    size_text = text[:tick].replace("_", "")
    width = int(size_text) if size_text else None
    rest = text[tick + 1:]
    signed = False
    if rest and rest[0] in "sS":
        signed = True
        rest = rest[1:]
    if not rest:
        raise ParseError("malformed based literal", line)
    radix = _BASE_RADIX.get(rest[0].lower())
    if radix is None:
        raise ParseError(f"unknown number base {rest[0]!r}", line)
    digits = rest[1:].replace("_", "")
    if not digits:
        raise ParseError("based literal has no digits", line)
    bits_per_digit = {2: 1, 8: 3, 16: 4}.get(radix)
    value = 0
    unknown = 0
    if radix == 10:
        if any(d.lower() in "xz?" for d in digits):
            # A decimal x/z literal sets every bit unknown.
            value = 0
            unknown = (1 << (width or 32)) - 1
        else:
            value = int(digits, 10)
    else:
        for digit in digits:
            value <<= bits_per_digit
            unknown <<= bits_per_digit
            if digit.lower() in "xz?":
                unknown |= (1 << bits_per_digit) - 1
            else:
                try:
                    value |= int(digit, radix)
                except ValueError:
                    raise ParseError(
                        f"digit {digit!r} invalid for base {radix}", line
                    ) from None
    if width is not None:
        mask = (1 << width) - 1
        value &= mask
        unknown &= mask
    return ast.Number(
        line=line,
        value=value,
        width=width,
        signed=signed,
        has_unknown=bool(unknown),
        unknown_mask=unknown,
    )


class Parser:
    """Parses a token stream into a :class:`repro.verilog.ast.SourceFile`."""

    def __init__(self, tokens: List[Token]) -> None:
        # Directives are position markers only; the subset ignores them.
        self._tokens = [t for t in tokens if t.kind is not TokenKind.DIRECTIVE]
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        # The token list always ends with EOF and _advance never moves
        # past it, so the zero-offset hot path needs no bounds clamp.
        if offset:
            idx = min(self._pos + offset, len(self._tokens) - 1)
            return self._tokens[idx]
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str, tok: Optional[Token] = None) -> ParseError:
        tok = tok or self._peek()
        return ParseError(f"{message}, got {tok.text!r}", tok.line, tok.col)

    def _expect_op(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_op(text):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_keyword(text):
            raise self._error(f"expected keyword {text!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise self._error("expected identifier")
        return self._advance()

    def _accept_op(self, text: str) -> bool:
        if self._peek().is_op(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._peek().is_keyword(text):
            self._advance()
            return True
        return False

    def _parse_range(self) -> ast.Range:
        """Parse ``[msb:lsb]``."""
        self._expect_op("[")
        msb = self._parse_expr()
        self._expect_op(":")
        lsb = self._parse_expr()
        self._expect_op("]")
        return ast.Range(msb=msb, lsb=lsb)

    def _maybe_range(self) -> Optional[ast.Range]:
        if self._peek().is_op("["):
            return self._parse_range()
        return None

    # -- top level -----------------------------------------------------------

    def parse_source(self) -> ast.SourceFile:
        source = ast.SourceFile()
        while self._peek().kind is not TokenKind.EOF:
            tok = self._peek()
            if tok.is_keyword("module") or tok.is_keyword("macromodule"):
                source.modules.append(self._parse_module())
            else:
                raise self._error("expected 'module' at top level")
        if not source.modules:
            raise ParseError("source contains no modules")
        return source

    def _parse_module(self) -> ast.Module:
        start = self._advance()  # module
        name = self._expect_ident().text
        module = ast.Module(name=name, line=start.line)
        if self._accept_op("#"):
            self._parse_module_param_list(module)
        if self._peek().is_op("("):
            self._parse_port_list(module)
        self._expect_op(";")
        while not self._peek().is_keyword("endmodule"):
            if self._peek().kind is TokenKind.EOF:
                raise self._error("unexpected end of file inside module")
            self._parse_module_item(module)
        self._advance()  # endmodule
        return module

    def _parse_module_param_list(self, module: ast.Module) -> None:
        """``#(parameter A = 1, parameter [3:0] B = 2, ...)``"""
        self._expect_op("(")
        while True:
            self._accept_keyword("parameter")
            rng = self._maybe_range()
            name_tok = self._expect_ident()
            self._expect_op("=")
            value = self._parse_expr()
            module.params.append(
                ast.ParamDecl(
                    name=name_tok.text,
                    value=value,
                    local=False,
                    range=rng,
                    line=name_tok.line,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(")")

    def _parse_port_list(self, module: ast.Module) -> None:
        self._expect_op("(")
        if self._accept_op(")"):
            return
        # Decide ANSI vs non-ANSI from the first token.
        direction: Optional[str] = None
        is_reg = False
        signed = False
        rng: Optional[ast.Range] = None
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.KEYWORD and tok.text in (
                "input",
                "output",
                "inout",
            ):
                direction = self._advance().text
                is_reg = self._accept_keyword("reg")
                if self._accept_keyword("wire"):
                    pass
                signed = self._accept_keyword("signed")
                rng = self._maybe_range()
            name_tok = self._expect_ident()
            module.port_order.append(name_tok.text)
            if direction is not None:
                module.ports.append(
                    ast.PortDecl(
                        direction=direction,
                        name=name_tok.text,
                        range=rng,
                        is_reg=is_reg,
                        signed=signed,
                        line=name_tok.line,
                    )
                )
            if not self._accept_op(","):
                break
        self._expect_op(")")

    # -- module items ----------------------------------------------------

    def _parse_module_item(self, module: ast.Module) -> None:
        tok = self._peek()
        if tok.kind is TokenKind.KEYWORD:
            handler = {
                "input": self._parse_body_port,
                "output": self._parse_body_port,
                "inout": self._parse_body_port,
                "wire": self._parse_net_decl,
                "reg": self._parse_net_decl,
                "integer": self._parse_net_decl,
                "parameter": self._parse_param_decl,
                "localparam": self._parse_param_decl,
                "assign": self._parse_continuous_assign,
                "always": self._parse_always,
                "initial": self._parse_initial,
            }.get(tok.text)
            if handler is None:
                raise self._error(f"unsupported module item {tok.text!r}")
            handler(module)
            return
        if tok.kind is TokenKind.IDENT:
            module.instances.extend(self._parse_instances())
            return
        if tok.is_op(";"):
            self._advance()
            return
        raise self._error("expected module item")

    def _parse_body_port(self, module: ast.Module) -> None:
        direction = self._advance().text
        is_reg = self._accept_keyword("reg")
        if self._accept_keyword("wire"):
            pass
        signed = self._accept_keyword("signed")
        rng = self._maybe_range()
        while True:
            name_tok = self._expect_ident()
            module.ports.append(
                ast.PortDecl(
                    direction=direction,
                    name=name_tok.text,
                    range=rng,
                    is_reg=is_reg,
                    signed=signed,
                    line=name_tok.line,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(";")

    def _parse_net_decl(self, module: ast.Module) -> None:
        kind = self._advance().text
        signed = self._accept_keyword("signed")
        rng = self._maybe_range() if kind != "integer" else None
        while True:
            name_tok = self._expect_ident()
            dims: List[ast.Range] = []
            while self._peek().is_op("["):
                dims.append(self._parse_range())
            init = None
            if self._accept_op("="):
                init = self._parse_expr()
            module.nets.append(
                ast.NetDecl(
                    kind=kind,
                    name=name_tok.text,
                    range=rng,
                    array_dims=dims,
                    signed=signed,
                    init=init,
                    line=name_tok.line,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(";")

    def _parse_param_decl(self, module: ast.Module) -> None:
        local = self._advance().text == "localparam"
        rng = self._maybe_range()
        while True:
            name_tok = self._expect_ident()
            self._expect_op("=")
            value = self._parse_expr()
            module.params.append(
                ast.ParamDecl(
                    name=name_tok.text,
                    value=value,
                    local=local,
                    range=rng,
                    line=name_tok.line,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(";")

    def _parse_continuous_assign(self, module: ast.Module) -> None:
        start = self._advance()  # assign
        while True:
            target = self._parse_lvalue()
            self._expect_op("=")
            value = self._parse_expr()
            module.assigns.append(
                ast.ContinuousAssign(target=target, value=value, line=start.line)
            )
            if not self._accept_op(","):
                break
        self._expect_op(";")

    def _parse_always(self, module: ast.Module) -> None:
        start = self._advance()  # always
        sensitivity: Optional[List[ast.SensItem]] = None
        if self._accept_op("@"):
            if self._accept_op("*"):
                sensitivity = None
            else:
                self._expect_op("(")
                if self._accept_op("*"):
                    sensitivity = None
                else:
                    sensitivity = [self._parse_sens_item()]
                    while self._accept_keyword("or") or self._accept_op(","):
                        sensitivity.append(self._parse_sens_item())
                self._expect_op(")")
        else:
            raise self._error("always block without sensitivity list")
        body = self._parse_statement()
        module.always_blocks.append(
            ast.AlwaysBlock(sensitivity=sensitivity, body=body, line=start.line)
        )

    def _parse_sens_item(self) -> ast.SensItem:
        if self._accept_keyword("posedge"):
            return ast.SensItem(edge="posedge", signal=self._expect_ident().text)
        if self._accept_keyword("negedge"):
            return ast.SensItem(edge="negedge", signal=self._expect_ident().text)
        return ast.SensItem(edge="level", signal=self._expect_ident().text)

    def _parse_initial(self, module: ast.Module) -> None:
        start = self._advance()
        body = self._parse_statement()
        module.initial_blocks.append(ast.InitialBlock(body=body, line=start.line))

    def _parse_instances(self) -> List[ast.Instance]:
        """One instantiation statement (may declare several instances)."""
        module_tok = self._expect_ident()
        param_overrides: List[Tuple[Optional[str], ast.Expr]] = []
        if self._accept_op("#"):
            self._expect_op("(")
            param_overrides = self._parse_connection_list()
            self._expect_op(")")
        instances: List[ast.Instance] = []
        while True:
            inst_tok = self._expect_ident()
            self._expect_op("(")
            raw = [] if self._peek().is_op(")") else self._parse_connection_list()
            self._expect_op(")")
            connections = [
                ast.PortConnection(name=name, expr=expr) for name, expr in raw
            ]
            instances.append(
                ast.Instance(
                    module_name=module_tok.text,
                    instance_name=inst_tok.text,
                    param_overrides=list(param_overrides),
                    connections=connections,
                    line=inst_tok.line,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(";")
        return instances

    def _parse_connection_list(self) -> List[Tuple[Optional[str], ast.Expr]]:
        """Named (``.a(x)``) or positional expression list."""
        out: List[Tuple[Optional[str], ast.Expr]] = []
        while True:
            if self._accept_op("."):
                name = self._expect_ident().text
                self._expect_op("(")
                expr = None if self._peek().is_op(")") else self._parse_expr()
                self._expect_op(")")
                out.append((name, expr))
            else:
                out.append((None, self._parse_expr()))
            if not self._accept_op(","):
                return out

    # -- statements --------------------------------------------------------

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_keyword("begin"):
            return self._parse_block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("case") or tok.is_keyword("casez") or tok.is_keyword("casex"):
            return self._parse_case()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_op(";"):
            self._advance()
            return ast.NullStmt(line=tok.line)
        if tok.kind is TokenKind.SYSTEM_IDENT:
            return self._parse_system_task()
        if tok.kind is TokenKind.IDENT or tok.is_op("{"):
            stmt = self._parse_assignment()
            self._expect_op(";")
            return stmt
        raise self._error("expected statement")

    def _parse_block(self) -> ast.Block:
        start = self._expect_keyword("begin")
        name = None
        if self._accept_op(":"):
            name = self._expect_ident().text
        stmts: List[ast.Stmt] = []
        while not self._peek().is_keyword("end"):
            if self._peek().kind is TokenKind.EOF:
                raise self._error("unexpected end of file inside begin/end")
            stmts.append(self._parse_statement())
        self._advance()  # end
        return ast.Block(line=start.line, stmts=stmts, name=name)

    def _parse_if(self) -> ast.If:
        start = self._expect_keyword("if")
        self._expect_op("(")
        cond = self._parse_expr()
        self._expect_op(")")
        then = self._parse_statement()
        other = None
        if self._accept_keyword("else"):
            other = self._parse_statement()
        return ast.If(line=start.line, cond=cond, then=then, other=other)

    def _parse_case(self) -> ast.Case:
        start = self._advance()
        kind = start.text
        self._expect_op("(")
        subject = self._parse_expr()
        self._expect_op(")")
        items: List[ast.CaseItem] = []
        while not self._peek().is_keyword("endcase"):
            if self._peek().kind is TokenKind.EOF:
                raise self._error("unexpected end of file inside case")
            if self._accept_keyword("default"):
                self._accept_op(":")
                items.append(ast.CaseItem(labels=[], body=self._parse_statement()))
                continue
            labels = [self._parse_expr()]
            while self._accept_op(","):
                labels.append(self._parse_expr())
            self._expect_op(":")
            items.append(ast.CaseItem(labels=labels, body=self._parse_statement()))
        self._advance()  # endcase
        return ast.Case(line=start.line, kind=kind, subject=subject, items=items)

    def _parse_for(self) -> ast.For:
        start = self._expect_keyword("for")
        self._expect_op("(")
        init = self._parse_assignment()
        if not isinstance(init, ast.Assign) or not init.blocking:
            raise self._error("for-loop init must be a blocking assignment")
        self._expect_op(";")
        cond = self._parse_expr()
        self._expect_op(";")
        step = self._parse_assignment()
        if not isinstance(step, ast.Assign) or not step.blocking:
            raise self._error("for-loop step must be a blocking assignment")
        self._expect_op(")")
        body = self._parse_statement()
        return ast.For(line=start.line, init=init, cond=cond, step=step, body=body)

    def _parse_system_task(self) -> ast.SystemTaskCall:
        tok = self._advance()
        args: List[ast.Expr] = []
        if self._accept_op("("):
            if not self._peek().is_op(")"):
                args.append(self._parse_expr())
                while self._accept_op(","):
                    args.append(self._parse_expr())
            self._expect_op(")")
        self._expect_op(";")
        return ast.SystemTaskCall(line=tok.line, name=tok.text, args=args)

    def _parse_assignment(self) -> ast.Assign:
        target = self._parse_lvalue()
        tok = self._peek()
        if tok.is_op("="):
            self._advance()
            return ast.Assign(
                line=tok.line, target=target, value=self._parse_expr(), blocking=True
            )
        if tok.is_op("<="):
            self._advance()
            return ast.Assign(
                line=tok.line, target=target, value=self._parse_expr(), blocking=False
            )
        raise self._error("expected '=' or '<=' in assignment")

    def _parse_lvalue(self) -> ast.Expr:
        """Identifier with optional selects, or a concatenation of lvalues."""
        tok = self._peek()
        if tok.is_op("{"):
            return self._parse_concat()
        name_tok = self._expect_ident()
        expr: ast.Expr = ast.Identifier(line=name_tok.line, name=name_tok.text)
        while self._peek().is_op("["):
            expr = self._parse_select_suffix(expr)
        return expr

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept_op("?"):
            then = self._parse_ternary()
            self._expect_op(":")
            other = self._parse_ternary()
            return ast.Ternary(line=cond.line, cond=cond, then=then, other=other)
        return cond

    def _parse_binary(self, tier: int) -> ast.Expr:
        # Precedence climbing: equivalent to the straightforward
        # one-method-per-tier cascade (left-associative within a tier,
        # higher tiers bind tighter) but recurses only where an operator
        # actually appears instead of through every tier per operand.
        lhs = self._parse_power()
        while True:
            tok = self._tokens[self._pos]
            if tok.kind is not TokenKind.OP:
                return lhs
            op_tier = _BINARY_OP_TIER.get(tok.text)
            if op_tier is None or op_tier < tier:
                return lhs
            self._pos += 1
            rhs = self._parse_binary(op_tier + 1)
            lhs = ast.Binary(line=lhs.line, op=tok.text, lhs=lhs, rhs=rhs)

    def _parse_power(self) -> ast.Expr:
        base = self._parse_unary()
        if self._peek().is_op("**"):
            self._advance()
            exponent = self._parse_power()  # right associative
            return ast.Binary(line=base.line, op="**", lhs=base, rhs=exponent)
        return base

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.OP and tok.text in _UNARY_OPS:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            if "." in tok.text:
                raise self._error("real literals are not supported", tok)
            return ast.Number(line=tok.line, value=int(tok.text.replace("_", "")))
        if tok.kind is TokenKind.BASED_NUMBER:
            self._advance()
            return parse_based_literal(tok.text, tok.line)
        if tok.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLiteral(line=tok.line, value=tok.text)
        if tok.kind is TokenKind.SYSTEM_IDENT:
            return self._parse_system_call()
        if tok.is_op("("):
            self._advance()
            inner = self._parse_expr()
            self._expect_op(")")
            return inner
        if tok.is_op("{"):
            return self._parse_concat()
        if tok.kind is TokenKind.IDENT:
            self._advance()
            expr: ast.Expr = ast.Identifier(line=tok.line, name=tok.text)
            while self._peek().is_op("["):
                expr = self._parse_select_suffix(expr)
            return expr
        raise self._error("expected expression")

    def _parse_system_call(self) -> ast.SystemCall:
        tok = self._advance()
        args: List[ast.Expr] = []
        if self._accept_op("("):
            if not self._peek().is_op(")"):
                args.append(self._parse_expr())
                while self._accept_op(","):
                    args.append(self._parse_expr())
            self._expect_op(")")
        return ast.SystemCall(line=tok.line, name=tok.text, args=args)

    def _parse_concat(self) -> ast.Expr:
        start = self._expect_op("{")
        first = self._parse_expr()
        if self._peek().is_op("{"):
            # Replication: {N{...}}
            inner = self._parse_concat()
            if not isinstance(inner, ast.Concat):
                inner = ast.Concat(line=start.line, parts=[inner])
            self._expect_op("}")
            return ast.Repeat(line=start.line, count=first, inner=inner)
        parts = [first]
        while self._accept_op(","):
            parts.append(self._parse_expr())
        self._expect_op("}")
        return ast.Concat(line=start.line, parts=parts)

    def _parse_select_suffix(self, base: ast.Expr) -> ast.Expr:
        """Parse one ``[...]`` suffix: index, part, or indexed part select."""
        start = self._expect_op("[")
        first = self._parse_expr()
        if self._accept_op(":"):
            lsb = self._parse_expr()
            self._expect_op("]")
            return ast.PartSelect(line=start.line, base=base, msb=first, lsb=lsb)
        if self._accept_op("+:"):
            width = self._parse_expr()
            self._expect_op("]")
            return ast.IndexedPartSelect(
                line=start.line, base=base, start=first, width=width, ascending=True
            )
        if self._accept_op("-:"):
            width = self._parse_expr()
            self._expect_op("]")
            return ast.IndexedPartSelect(
                line=start.line, base=base, start=first, width=width, ascending=False
            )
        self._expect_op("]")
        return ast.Index(line=start.line, base=base, index=first)


def parse_source(source: str) -> ast.SourceFile:
    """Lex and parse Verilog ``source`` text into a :class:`SourceFile`."""
    return Parser(lex(source)).parse_source()


def parse_source_fast(source: str) -> ast.SourceFile:
    """:func:`parse_source` through the regex lexer.

    ``lex_fast`` produces the exact token stream of ``lex`` (the contract
    :mod:`repro.verilog.fastlex` states and ``tests/test_fastlex.py``
    enforces), so the resulting AST is identical; only the lexing cost
    changes.  Evaluation-side hot paths use this entry point.
    """
    from repro.verilog.fastlex import lex_fast

    return Parser(lex_fast(source)).parse_source()
