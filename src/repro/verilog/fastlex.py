"""Regex-accelerated lexer with a token stream identical to :mod:`lexer`.

The hand-written :class:`repro.verilog.lexer.Lexer` advances one character
per Python-level loop iteration, which makes the syntax-check stage the
dominant cost of corpus curation.  This module implements the *same* token
grammar as one compiled regex alternation plus a small procedural string
scanner, so the per-token cost is a single C-level match instead of tens
of Python calls.

Equivalence contract (relied on by the execution engine and enforced by
``tests/test_fastlex.py``): for any input, ``lex_fast(source)`` either
returns exactly ``lex(source)`` — same kinds, texts, lines, and columns —
or raises :class:`LexError` exactly when ``lex`` raises (error messages
and positions may differ; the success/failure verdict may not).  Feeding
the tokens to the shared :class:`repro.verilog.parser.Parser` therefore
yields byte-identical parse results, and :func:`check_syntax_fast` is a
drop-in replacement for :func:`repro.verilog.syntax.check_syntax`.
"""

from __future__ import annotations

import re
from typing import List

from repro.errors import LexError
from repro.verilog.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPS,
    SINGLE_CHAR_OPS,
    Token,
    TokenKind,
)

#: whitespace, line comments, and *terminated* block comments; an
#: unterminated ``/*`` is left unconsumed and detected in the main loop.
_TRIVIA_RE = re.compile(r"(?:[ \t\r\n]+|//[^\n]*|/\*.*?\*/)+", re.DOTALL)

_OP_PATTERN = "|".join(re.escape(op) for op in MULTI_CHAR_OPS) + (
    "|[" + re.escape("".join(sorted(SINGLE_CHAR_OPS))) + "]"
)

#: One alternation per token class, in the reference lexer's dispatch
#: order where prefixes overlap (sized/unsized based numbers must be tried
#: before plain numbers).  Unsized based literals admit no sign flag —
#: ``'sb1`` is an error in the reference lexer, so it must not match here.
_TOKEN_RE = re.compile(
    r"(?P<directive>`(?:\\\n|[^\n])*)"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_$]*)"
    r"|(?P<system>\$[A-Za-z_][A-Za-z0-9_$]*)"
    r"|(?P<based>(?:[0-9][0-9_]*'[sS]?|')[bBoOdDhH][0-9a-fA-FxXzZ?_]+)"
    r"|(?P<number>[0-9][0-9_]*(?:\.[0-9]+)?)"
    rf"|(?P<op>{_OP_PATTERN})"
)

_GROUP_KINDS = {
    "directive": TokenKind.DIRECTIVE,
    "system": TokenKind.SYSTEM_IDENT,
    "based": TokenKind.BASED_NUMBER,
    "number": TokenKind.NUMBER,
    "op": TokenKind.OP,
}

_STRING_ESCAPES = {"n": "\n", "t": "\t", "\\": "\\", '"': '"'}


def _lex_string(source: str, pos: int, line: int, col: int):
    """Scan a string literal starting at the opening quote.

    Mirrors the reference lexer exactly: recognized escapes are decoded,
    unknown escapes keep the escaped character, a raw newline or EOF
    before the closing quote is an error.  Returns ``(token, end_pos)``.
    """
    n = len(source)
    i = pos + 1
    chars: List[str] = []
    while True:
        if i >= n:
            raise LexError("unterminated string literal", line, col)
        ch = source[i]
        if ch == "\n":
            raise LexError("newline in string literal", line, col)
        if ch == "\\":
            nxt = source[i + 1] if i + 1 < n else ""
            chars.append(_STRING_ESCAPES.get(nxt, nxt))
            i += 2
            continue
        if ch == '"':
            return Token(TokenKind.STRING, "".join(chars), line, col), i + 1
        chars.append(ch)
        i += 1


def lex_fast(source: str) -> List[Token]:
    """Lex ``source`` into the same token list :func:`lexer.lex` returns."""
    tokens: List[Token] = []
    pos = 0
    n = len(source)
    line = 1
    bol = 0  # index of the first character of the current line
    trivia_match = _TRIVIA_RE.match
    token_match = _TOKEN_RE.match

    while True:
        trivia = trivia_match(source, pos)
        if trivia:
            segment = trivia.group()
            newlines = segment.count("\n")
            if newlines:
                line += newlines
                bol = pos + segment.rfind("\n") + 1
            pos = trivia.end()
        if pos >= n:
            tokens.append(Token(TokenKind.EOF, "", line, pos - bol + 1))
            return tokens
        col = pos - bol + 1
        ch = source[pos]
        if ch == "/" and source.startswith("/*", pos):
            # Trivia stopped on an unterminated block comment.
            raise LexError("unterminated block comment", line, col)
        if ch == '"':
            token, end = _lex_string(source, pos, line, col)
            tokens.append(token)
            # An escaped newline inside a string spans lines; keep the
            # line/column bookkeeping in step with the reference lexer.
            segment = source[pos:end]
            if "\n" in segment:
                line += segment.count("\n")
                bol = pos + segment.rfind("\n") + 1
            pos = end
            continue
        match = token_match(source, pos)
        if match is None:
            raise LexError(f"illegal character {ch!r}", line, col)
        text = match.group()
        group = match.lastgroup
        if group == "ident":
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        else:
            kind = _GROUP_KINDS[group]
        tokens.append(Token(kind, text, line, col))
        if group == "directive" and "\n" in text:
            # Multi-line `define with line continuations.
            line += text.count("\n")
            bol = pos + text.rfind("\n") + 1
        pos = match.end()


def check_syntax_fast(source: str):
    """:func:`repro.verilog.syntax.check_syntax` via the fast lexer.

    Identical verdicts by the equivalence contract above; the engine's
    syntax stage uses this entry point on whole-corpus runs.
    """
    from repro.verilog.syntax import check_with_lexer

    return check_with_lexer(source, lex_fast)
