"""Syntax checking — the reproduction's stand-in for Icarus Verilog 10.3.

The paper (Sec. III-D2) compiles every candidate file with Icarus and drops
files with *syntax-specific* errors, deliberately tolerating unresolved
references to modules defined in other files.  :func:`check_syntax` has the
same contract: it runs the lexer and parser and additionally applies a few
cheap semantic sanity checks that Icarus reports at compile time even
without elaboration (duplicate module names, duplicate port declarations).
Cross-file references (instantiating an unknown module) are *not* errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import LexError, ParseError
from repro.verilog import ast
from repro.verilog.lexer import lex
from repro.verilog.parser import Parser


@dataclass
class SyntaxReport:
    """Outcome of checking a single Verilog file."""

    ok: bool
    errors: List[str] = field(default_factory=list)
    module_names: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def _semantic_lint(source_file: ast.SourceFile) -> List[str]:
    """Cheap per-file checks Icarus would also report without elaboration."""
    errors: List[str] = []
    seen_modules = set()
    for module in source_file.modules:
        if module.name in seen_modules:
            errors.append(f"duplicate module definition {module.name!r}")
        seen_modules.add(module.name)

        seen_ports = set()
        for port in module.ports:
            if port.name in seen_ports:
                errors.append(
                    f"module {module.name!r}: duplicate port {port.name!r}"
                )
            seen_ports.add(port.name)

        # Ports listed in the header must be declared (ANSI headers declare
        # inline; non-ANSI must declare in the body).
        declared = {port.name for port in module.ports}
        for name in module.port_order:
            if name not in declared:
                errors.append(
                    f"module {module.name!r}: port {name!r} never declared"
                )

        seen_params = set()
        for param in module.params:
            if param.name in seen_params:
                errors.append(
                    f"module {module.name!r}: duplicate parameter {param.name!r}"
                )
            seen_params.add(param.name)
    return errors


def check_with_lexer(source: str, lexer) -> SyntaxReport:
    """The full verdict pipeline over any token source.

    ``lexer`` maps source text to a token list (the reference
    :func:`repro.verilog.lexer.lex` or the engine's accelerated
    ``lex_fast``); everything downstream — parse, error capture, lint —
    is shared so the two entry points cannot drift apart.
    """
    try:
        source_file = Parser(lexer(source)).parse_source()
    except (LexError, ParseError) as exc:
        return SyntaxReport(ok=False, errors=[str(exc)])
    errors = _semantic_lint(source_file)
    return SyntaxReport(
        ok=not errors,
        errors=errors,
        module_names=[m.name for m in source_file.modules],
    )


def check_syntax(source: str) -> SyntaxReport:
    """Check whether ``source`` is well-formed under the supported subset.

    Returns a :class:`SyntaxReport`; never raises for malformed input.
    """
    return check_with_lexer(source, lex)
