"""The copyrighted reference corpus.

The paper built its benchmark corpus by running the copyright-detection
filter over GitHub data and keeping the ~2k hits (from vendors such as
Intel and Xilinx).  We do the same: run the
:class:`~repro.curation.copyright_filter.CopyrightFilter` over the
synthetic world's scraped files and keep everything it flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.curation.copyright_filter import CopyrightFilter
from repro.github.scraper import ScrapedFile
from repro.github.world import GitHubWorld


@dataclass
class CopyrightedCorpus:
    """Keyed collection of copyright-protected Verilog files."""

    entries: Dict[str, str] = field(default_factory=dict)  # key -> source

    def __len__(self) -> int:
        return len(self.entries)

    def keys(self) -> List[str]:
        return list(self.entries.keys())

    def text(self, key: str) -> str:
        return self.entries[key]


def collect_copyrighted_corpus(
    files: List[ScrapedFile],
    copyright_filter: Optional[CopyrightFilter] = None,
) -> CopyrightedCorpus:
    """Corpus = every scraped file the copyright filter flags."""
    detector = copyright_filter or CopyrightFilter()
    corpus = CopyrightedCorpus()
    for record in files:
        if not detector.is_clean(record.content):
            corpus.entries[record.file_id] = record.content
    return corpus


def corpus_from_world(world: GitHubWorld) -> CopyrightedCorpus:
    """Ground-truth corpus straight from world metadata (for tests)."""
    corpus = CopyrightedCorpus()
    for repo in world.repos:
        for record in repo.verilog_files:
            if record.header_kind == "proprietary":
                corpus.entries[f"{repo.full_name}:{record.path}"] = record.content
    return corpus
