"""Violation-rate evaluation of a model against the copyrighted corpus."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.copyright.corpus import CopyrightedCorpus
from repro.copyright.prompts import PromptSpec
from repro.llm.model import LanguageModel
from repro.textsim import SimilarityIndex
from repro.utils.rng import DeterministicRNG

DEFAULT_VIOLATION_THRESHOLD = 0.8
DEFAULT_NUM_PROMPTS = 100


@dataclass
class PromptResult:
    """Outcome for one prompt."""

    source_key: str
    prompt: str
    completion: str
    best_match_key: Optional[str]
    similarity: float
    violation: bool


@dataclass
class ViolationReport:
    """Aggregate benchmark outcome for one model."""

    model_name: str
    threshold: float
    results: List[PromptResult] = field(default_factory=list)

    @property
    def violations(self) -> int:
        return sum(r.violation for r in self.results)

    @property
    def violation_rate(self) -> float:
        return self.violations / len(self.results) if self.results else 0.0

    def summary(self) -> str:
        return (
            f"{self.model_name}: {self.violations}/{len(self.results)} "
            f"violations ({self.violation_rate:.1%}) at "
            f"threshold {self.threshold}"
        )


class CopyrightBenchmark:
    """Reusable benchmark: fixed prompt sample + similarity index.

    Building the index once and reusing it across models keeps the Fig. 3
    comparison apples-to-apples (same prompts, same reference corpus).
    """

    def __init__(
        self,
        corpus: CopyrightedCorpus,
        num_prompts: int = DEFAULT_NUM_PROMPTS,
        threshold: float = DEFAULT_VIOLATION_THRESHOLD,
        prompt_spec: PromptSpec = PromptSpec(),
        seed: int = 0xC0DE,
    ) -> None:
        if len(corpus) == 0:
            raise ValueError("copyrighted corpus is empty")
        self.corpus = corpus
        self.threshold = threshold
        self.prompt_spec = prompt_spec
        rng = DeterministicRNG(seed)
        keys = corpus.keys()
        count = min(num_prompts, len(keys))
        self.prompt_keys = rng.sample(keys, count)
        self.index = SimilarityIndex()
        for key, text in corpus.entries.items():
            self.index.add(key, text)

    def evaluate(
        self,
        model: LanguageModel,
        temperature: float = 0.2,
        max_new_tokens: int = 512,
        seed: int = 0,
        executor=None,
        store=None,
        checkpoint_tag: str = "copyright",
    ) -> ViolationReport:
        """Run all prompts through ``model`` and score completions.

        The scored text is prompt + completion: the benchmark asks whether
        the model *reproduces the protected file*, and the prompt is part
        of that file by construction.

        A facade over :class:`repro.evalkit.EvalPlan`: generation and
        similarity lookups stream through the engine (optionally fanned
        across a process pool via ``executor``, optionally checkpointed
        through ``store``) with results identical to the seed-era serial
        loop — same prompts, same per-(key, position) seed forks.
        """
        from repro.evalkit import CopyrightTask, EvalPlan

        task = CopyrightTask(
            self,
            temperature=temperature,
            max_new_tokens=max_new_tokens,
            seed=seed,
        )
        plan = EvalPlan([model], [task], executor=executor)
        run = plan.run(store=store, tag=checkpoint_tag)
        return run.result(model.name, task.task_id)
