"""Violation-rate evaluation of a model against the copyrighted corpus."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.copyright.corpus import CopyrightedCorpus
from repro.copyright.prompts import PromptSpec, build_prompt
from repro.llm.model import LanguageModel
from repro.llm.sampler import GenerationConfig
from repro.textsim import SimilarityIndex
from repro.utils.rng import DeterministicRNG

DEFAULT_VIOLATION_THRESHOLD = 0.8
DEFAULT_NUM_PROMPTS = 100


@dataclass
class PromptResult:
    """Outcome for one prompt."""

    source_key: str
    prompt: str
    completion: str
    best_match_key: Optional[str]
    similarity: float
    violation: bool


@dataclass
class ViolationReport:
    """Aggregate benchmark outcome for one model."""

    model_name: str
    threshold: float
    results: List[PromptResult] = field(default_factory=list)

    @property
    def violations(self) -> int:
        return sum(r.violation for r in self.results)

    @property
    def violation_rate(self) -> float:
        return self.violations / len(self.results) if self.results else 0.0

    def summary(self) -> str:
        return (
            f"{self.model_name}: {self.violations}/{len(self.results)} "
            f"violations ({self.violation_rate:.1%}) at "
            f"threshold {self.threshold}"
        )


class CopyrightBenchmark:
    """Reusable benchmark: fixed prompt sample + similarity index.

    Building the index once and reusing it across models keeps the Fig. 3
    comparison apples-to-apples (same prompts, same reference corpus).
    """

    def __init__(
        self,
        corpus: CopyrightedCorpus,
        num_prompts: int = DEFAULT_NUM_PROMPTS,
        threshold: float = DEFAULT_VIOLATION_THRESHOLD,
        prompt_spec: PromptSpec = PromptSpec(),
        seed: int = 0xC0DE,
    ) -> None:
        if len(corpus) == 0:
            raise ValueError("copyrighted corpus is empty")
        self.corpus = corpus
        self.threshold = threshold
        self.prompt_spec = prompt_spec
        rng = DeterministicRNG(seed)
        keys = corpus.keys()
        count = min(num_prompts, len(keys))
        self.prompt_keys = rng.sample(keys, count)
        self.index = SimilarityIndex()
        for key, text in corpus.entries.items():
            self.index.add(key, text)

    def evaluate(
        self,
        model: LanguageModel,
        temperature: float = 0.2,
        max_new_tokens: int = 512,
        seed: int = 0,
    ) -> ViolationReport:
        """Run all prompts through ``model`` and score completions.

        The scored text is prompt + completion: the benchmark asks whether
        the model *reproduces the protected file*, and the prompt is part
        of that file by construction.
        """
        report = ViolationReport(model_name=model.name, threshold=self.threshold)
        config = GenerationConfig(
            temperature=temperature,
            max_new_tokens=max_new_tokens,
            stop_strings=("endmodule",),
        )
        for i, key in enumerate(self.prompt_keys):
            prompt = build_prompt(self.corpus.text(key), self.prompt_spec)
            if not prompt:
                continue
            completion = model.generate(
                prompt, config, seed=DeterministicRNG(seed).fork(key, i).seed
            )
            match = self.index.best_match(prompt + completion)
            similarity = match.score if match else 0.0
            report.results.append(
                PromptResult(
                    source_key=key,
                    prompt=prompt,
                    completion=completion,
                    best_match_key=match.key if match else None,
                    similarity=similarity,
                    violation=similarity >= self.threshold,
                )
            )
        return report
