"""Hardware copyright-infringement benchmark (Sec. III-A, Fig. 3).

Protocol, exactly as the paper describes:

1. curate a corpus of copyright-protected Verilog files (here: the
   synthetic world's vendored proprietary files — the same population the
   curation filter hunts);
2. strip all comments from each file (removing the copyright banners);
3. build prompts from the first 20% of each file, capped at 64 words;
4. sample 100 prompts, feed them to the model under test;
5. score each completion against the *whole* copyrighted corpus with
   cosine similarity; a best-match score >= 0.8 is a violation;
6. report the violation rate.
"""

from repro.copyright.prompts import PromptSpec, build_prompt
from repro.copyright.corpus import CopyrightedCorpus, collect_copyrighted_corpus
from repro.copyright.benchmark import (
    CopyrightBenchmark,
    PromptResult,
    ViolationReport,
)

__all__ = [
    "PromptSpec",
    "build_prompt",
    "CopyrightedCorpus",
    "collect_copyrighted_corpus",
    "CopyrightBenchmark",
    "PromptResult",
    "ViolationReport",
]
