"""Prompt construction for the infringement benchmark.

The paper strips comments (the files "still contained copyright-related
information in the comments"), then uses the first 20% of the code with a
64-word cap.  The cut is aligned to a word boundary: a prompt ending in a
half-identifier or a truncated whitespace run would never match the
model's training-context statistics, understating memorization.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.utils.textnorm import strip_comments

DEFAULT_PREFIX_FRACTION = 0.2
DEFAULT_MAX_WORDS = 64

_WORD_RE = re.compile(r"\S+")


@dataclass(frozen=True)
class PromptSpec:
    """Prompt-construction parameters (ablation benches sweep these)."""

    prefix_fraction: float = DEFAULT_PREFIX_FRACTION
    max_words: int = DEFAULT_MAX_WORDS


def build_prompt(source: str, spec: PromptSpec = PromptSpec()) -> str:
    """Build the benchmark prompt for one copyrighted file."""
    if not 0.0 < spec.prefix_fraction <= 1.0:
        raise ValueError("prefix_fraction must be in (0, 1]")
    if spec.max_words < 1:
        raise ValueError("max_words must be >= 1")
    stripped = strip_comments(source).lstrip()
    if not stripped:
        return ""
    budget = max(1, int(len(stripped) * spec.prefix_fraction))
    cut = stripped[:budget]
    words = list(_WORD_RE.finditer(cut))
    if not words:
        return ""
    if len(words) > spec.max_words:
        words = words[:spec.max_words]
    end = words[-1].end()
    # If the character budget sliced an identifier in half, drop the
    # partial word entirely.
    if (
        end == len(cut)
        and budget < len(stripped)
        and not stripped[budget].isspace()
        and len(words) >= 2
    ):
        end = words[-2].end()
    return cut[:end]
