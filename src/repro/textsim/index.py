"""Nearest-neighbour similarity search over a reference corpus."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.textsim.cosine import cosine_similarity
from repro.textsim.vectorize import NgramVectorizer, SparseVector


@dataclass
class SimilarityMatch:
    """Best corpus match for a query text."""

    key: Hashable
    score: float


class SimilarityIndex:
    """Max-cosine lookup against a fixed reference corpus.

    An inverted index over n-grams restricts each query to documents that
    share at least one n-gram, which in practice prunes most of the corpus
    while remaining exact (documents sharing no n-gram have similarity 0).
    """

    def __init__(self, vectorizer: Optional[NgramVectorizer] = None) -> None:
        self.vectorizer = vectorizer or NgramVectorizer()
        self._vectors: Dict[Hashable, SparseVector] = {}
        self._posting: Dict[str, List[Hashable]] = {}

    def add(self, key: Hashable, text: str) -> None:
        if key in self._vectors:
            raise KeyError(f"duplicate key {key!r}")
        vector = self.vectorizer.vectorize(text)
        self._vectors[key] = vector
        for term in vector.weights:
            self._posting.setdefault(term, []).append(key)

    def __len__(self) -> int:
        return len(self._vectors)

    def best_match(self, text: str) -> Optional[SimilarityMatch]:
        """The corpus document with the highest cosine similarity."""
        query = self.vectorizer.vectorize(text)
        if not self._vectors or query.norm == 0.0:
            return None
        # Gather exact candidates via the inverted index; accumulate dot
        # products in one pass over the query terms.
        dots: Dict[Hashable, float] = {}
        for term, weight in query.weights.items():
            for key in self._posting.get(term, ()):
                dots[key] = dots.get(key, 0.0) + weight * self._vectors[
                    key
                ].weights[term]
        if not dots:
            return None
        best_key, best_dot = max(dots.items(), key=lambda kv: kv[1])
        best_score = best_dot / (query.norm * self._vectors[best_key].norm)
        # The max dot product is not necessarily the max cosine (norms
        # differ); rescan the candidate set with true cosine.
        for key, dot in dots.items():
            score = dot / (query.norm * self._vectors[key].norm)
            if score > best_score:
                best_key, best_score = key, score
        return SimilarityMatch(key=best_key, score=best_score)

    def score_against(self, key: Hashable, text: str) -> float:
        """Cosine similarity of ``text`` against one specific document."""
        return cosine_similarity(
            self.vectorizer.vectorize(text), self._vectors[key]
        )
