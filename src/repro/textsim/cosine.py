"""Cosine similarity between sparse vectors."""

from __future__ import annotations

from repro.textsim.vectorize import SparseVector


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Standard cosine similarity in [0, 1] for TF vectors.

    Either vector being empty yields 0.0 (no evidence of similarity).
    """
    if a.norm == 0.0 or b.norm == 0.0:
        return 0.0
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    dot = 0.0
    for term, weight in small.weights.items():
        other = large.weights.get(term)
        if other is not None:
            dot += weight * other
    return dot / (a.norm * b.norm)
