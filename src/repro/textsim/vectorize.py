"""Character n-gram term-frequency vectors."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.utils.textnorm import normalize_whitespace, strip_comments

#: Character n-gram size.  Calibrated so that true near-copies score ~1.0
#: while independently generated same-family modules stay clearly below
#: the 0.8 violation threshold (shorter n-grams over-reward shared RTL
#: idioms like "input wire [7:0]").
DEFAULT_NGRAM = 5


@dataclass(frozen=True)
class SparseVector:
    """A sparse TF vector with its precomputed L2 norm."""

    weights: Dict[str, float]
    norm: float

    @classmethod
    def from_counts(cls, counts: Counter) -> "SparseVector":
        weights = {term: float(count) for term, count in counts.items()}
        norm = math.sqrt(sum(w * w for w in weights.values()))
        return cls(weights=weights, norm=norm)

    def __len__(self) -> int:
        return len(self.weights)


class NgramVectorizer:
    """Maps text to character n-gram TF vectors.

    Text is normalized first (comments stripped, whitespace collapsed,
    lowercased) so that formatting and comment differences between a
    model completion and the original file do not mask a near-copy — the
    benchmark wants to detect *code* reuse, not comment reuse.
    """

    def __init__(self, n: int = DEFAULT_NGRAM, strip: bool = True) -> None:
        if n < 1:
            raise ValueError("n-gram size must be >= 1")
        self.n = n
        self.strip = strip

    def normalize(self, text: str) -> str:
        if self.strip:
            text = strip_comments(text)
        return normalize_whitespace(text).lower()

    def vectorize(self, text: str) -> SparseVector:
        normalized = self.normalize(text)
        counts: Counter = Counter()
        if len(normalized) < self.n:
            if normalized:
                counts[normalized] += 1
        else:
            for i in range(len(normalized) - self.n + 1):
                counts[normalized[i:i + self.n]] += 1
        return SparseVector.from_counts(counts)
