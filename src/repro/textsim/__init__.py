"""Cosine-similarity text comparison for the copyright benchmark.

The paper scores a model completion against the copyrighted corpus with
cosine similarity and calls a violation anything scoring >= 0.8
(Sec. III-A).  This package provides the vectorizer (character n-gram
term frequencies, robust to tokenization differences in generated code),
cosine similarity, and a nearest-neighbour index over a corpus.
"""

from repro.textsim.vectorize import NgramVectorizer, SparseVector
from repro.textsim.cosine import cosine_similarity
from repro.textsim.index import SimilarityIndex, SimilarityMatch

__all__ = [
    "NgramVectorizer",
    "SparseVector",
    "cosine_similarity",
    "SimilarityIndex",
    "SimilarityMatch",
]
